//! Property tests for the count-table records: the cumulative layout must
//! answer every query exactly like a naive reference map.

use motivo_table::Record;
use motivo_treelet::{all_treelets, ColorSet, ColoredTreelet};
use proptest::prelude::*;

/// Random record contents: a subset of valid colored-treelet keys (sizes
/// 2..=4 over 6 colors) with counts in 1..100.
fn record_strategy() -> impl Strategy<Value = Vec<(ColoredTreelet, u128)>> {
    let keys: Vec<ColoredTreelet> = {
        let mut v = Vec::new();
        for h in 2..=4u32 {
            for &t in all_treelets(h).iter() {
                for colors in ColorSet::full(6).subsets_of_size(h) {
                    v.push(ColoredTreelet::new(t, colors));
                }
            }
        }
        v
    };
    let n = keys.len();
    proptest::collection::btree_map(0..n, 1u128..100, 1..40)
        .prop_map(move |m| m.into_iter().map(|(i, c)| (keys[i], c)).collect())
}

proptest! {
    #[test]
    fn record_answers_match_reference(pairs in record_strategy()) {
        let rec = Record::from_counts(pairs.iter().map(|&(k, c)| (k.code(), c)).collect());
        let reference: std::collections::HashMap<ColoredTreelet, u128> =
            pairs.iter().copied().collect();
        // Totals.
        let total: u128 = reference.values().sum();
        prop_assert_eq!(rec.total(), total);
        prop_assert_eq!(rec.len(), reference.len());
        // Point lookups (including misses).
        for (&k, &c) in &reference {
            prop_assert_eq!(rec.count_of(k), c);
        }
        let absent = ColoredTreelet::new(
            motivo_treelet::path_treelet(5),
            ColorSet::full(5),
        );
        prop_assert_eq!(rec.count_of(absent), 0);
        // Iteration recovers exactly the reference.
        let iterated: std::collections::HashMap<ColoredTreelet, u128> = rec.iter().collect();
        prop_assert_eq!(&iterated, &reference);
        // Per-shape totals tile the overall total.
        let mut shape_sum = 0u128;
        for h in 2..=4u32 {
            for &t in all_treelets(h).iter() {
                let tt = rec.tree_total(t);
                let want: u128 = reference
                    .iter()
                    .filter(|(k, _)| k.tree() == t)
                    .map(|(_, &c)| c)
                    .sum();
                prop_assert_eq!(tt, want);
                shape_sum += tt;
                // Per-shape iteration agrees.
                let it_sum: u128 = rec.iter_tree(t).map(|(_, c)| c).sum();
                prop_assert_eq!(it_sum, want);
            }
        }
        prop_assert_eq!(shape_sum, total);
    }

    #[test]
    fn selection_is_exact_inverse_of_cumulation(pairs in record_strategy()) {
        let rec = Record::from_counts(pairs.iter().map(|&(k, c)| (k.code(), c)).collect());
        // Global selection: each key hit exactly `count` times across all r.
        let mut tally: std::collections::HashMap<u64, u128> = Default::default();
        for r in 1..=rec.total() {
            *tally.entry(rec.select(r).code()).or_insert(0) += 1;
        }
        for (k, c) in &pairs {
            prop_assert_eq!(tally[&k.code()], *c);
        }
    }

    #[test]
    fn encode_decode_identity(pairs in record_strategy()) {
        let rec = Record::from_counts(pairs.iter().map(|&(k, c)| (k.code(), c)).collect());
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        prop_assert_eq!(buf.len(), rec.encoded_len());
        let back = Record::decode(&mut &buf[..]).expect("roundtrip");
        prop_assert_eq!(back, rec);
    }
}
