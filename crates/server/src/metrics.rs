//! Per-request-kind serving metrics, registered in the store's
//! [`motivo_obs::Registry`] so one `Metrics` response (or metrics
//! snapshot file) covers the whole stack — server request counters next
//! to the store's LRU/journal counters and the core's build spans.
//!
//! Names follow a fixed scheme:
//!
//! - `server.requests.<Kind>` — frames accepted for that kind (counted
//!   when the frame parses, before the work runs);
//! - `server.errors.<Kind>` — responses that carried an error envelope,
//!   backpressure rejections (`Busy`/`ShuttingDown`) included;
//! - `server.latency.<Kind>` — service time per kind (queue wait
//!   excluded), a log-bucket histogram;
//! - `server.queue_wait` / `server.service` — the queue-wait vs
//!   service-time split over all pooled requests.
//!
//! Frames that fail to parse are attributed to the pseudo-kind
//! `Invalid`, so the counter set stays closed: every frame lands in
//! exactly one `server.requests.*` counter.

use motivo_obs::{Counter, Histogram, Registry};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Duration;

/// The closed set of kind labels: every wire request type, plus
/// `Invalid` for frames that never parsed into a request.
pub const KINDS: [&str; 18] = [
    "Ags",
    "Batch",
    "Build",
    "Hello",
    "Invalid",
    "ListUrns",
    "Metrics",
    "NaiveEstimates",
    "Ping",
    "Promote",
    "ReplFetch",
    "ReplFile",
    "ReplFiles",
    "ReplManifest",
    "ReplStatus",
    "Sample",
    "Shutdown",
    "Stats",
];

/// The handles of one kind's three metrics.
pub struct KindMetrics {
    pub requests: Counter,
    pub errors: Counter,
    pub latency: Arc<Histogram>,
}

/// All serving metrics of one serve loop, pre-registered so the hot path
/// never takes the registry's write lock.
pub struct ServerMetrics {
    registry: Arc<Registry>,
    kinds: Vec<KindMetrics>,
    pub queue_wait: Arc<Histogram>,
    pub service: Arc<Histogram>,
}

/// One kind's counters and latency quantiles, as reported in
/// [`crate::ServeReport`] and `server-stats.json` (microsecond units;
/// quantiles are log-bucket histogram estimates, `max_us` exact).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    pub kind: String,
    pub count: u64,
    pub errors: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl ServerMetrics {
    /// Registers the full metric set in `registry` (idempotent: the
    /// registry hands back existing handles on name collision).
    pub fn new(registry: Arc<Registry>) -> ServerMetrics {
        let kinds = KINDS
            .iter()
            .map(|kind| KindMetrics {
                requests: registry.counter(&format!("server.requests.{kind}")),
                errors: registry.counter(&format!("server.errors.{kind}")),
                latency: registry.histogram(&format!("server.latency.{kind}")),
            })
            .collect();
        let queue_wait = registry.histogram("server.queue_wait");
        let service = registry.histogram("server.service");
        ServerMetrics {
            registry,
            kinds,
            queue_wait,
            service,
        }
    }

    /// The registry everything is registered in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The handles for `kind` (which must be one of [`KINDS`]).
    pub fn kind(&self, kind: &str) -> &KindMetrics {
        let i = KINDS
            .binary_search(&kind)
            .unwrap_or_else(|_| panic!("unknown request kind `{kind}`"));
        &self.kinds[i]
    }

    /// Records one pool-answered request: service time into the kind's
    /// histogram and the global service histogram, plus an error count
    /// when the response carried an error envelope.
    pub fn record_served(&self, kind: &str, service: Duration, is_error: bool) {
        let m = self.kind(kind);
        m.latency.record_duration(service);
        self.service.record_duration(service);
        if is_error {
            m.errors.inc();
        }
    }

    /// Records an inline-answered request (`Ping`/`Shutdown`): kind
    /// latency only — the global `server.queue_wait`/`server.service`
    /// pair is reserved for pooled jobs, so its two counts stay
    /// comparable.
    pub fn record_inline(&self, kind: &str, service: Duration) {
        self.kind(kind).latency.record_duration(service);
    }

    /// Per-kind counters and quantiles, ascending by kind name, omitting
    /// kinds that never saw a request.
    pub fn kind_stats(&self) -> Vec<KindStats> {
        KINDS
            .iter()
            .zip(&self.kinds)
            .filter(|(_, m)| m.requests.get() > 0)
            .map(|(kind, m)| {
                let h = m.latency.snapshot();
                KindStats {
                    kind: (*kind).to_string(),
                    count: m.requests.get(),
                    errors: m.errors.get(),
                    p50_us: h.quantile(0.5) / 1_000,
                    p90_us: h.quantile(0.9) / 1_000,
                    p99_us: h.quantile(0.99) / 1_000,
                    max_us: h.max / 1_000,
                }
            })
            .collect()
    }

    /// The `Metrics` response payload: per-kind rows, the queue-wait vs
    /// service-time split, uptime, and the full Prometheus-style text
    /// rendering of the registry (what `motivo stats --raw` prints).
    pub fn metrics_json(&self) -> Value {
        let kinds: Vec<Value> = self.kind_stats().iter().map(kind_stats_json).collect();
        json!({
            "uptime_secs": self.registry.uptime_secs(),
            "kinds": kinds,
            "queue_wait": histogram_json(&self.queue_wait),
            "service": histogram_json(&self.service),
            "text": self.registry.render_prometheus(),
        })
    }
}

/// Serializes one per-kind row.
pub fn kind_stats_json(s: &KindStats) -> Value {
    json!({
        "kind": s.kind,
        "count": s.count,
        "errors": s.errors,
        "p50_us": s.p50_us,
        "p90_us": s.p90_us,
        "p99_us": s.p99_us,
        "max_us": s.max_us,
    })
}

fn histogram_json(h: &Histogram) -> Value {
    let s = h.snapshot();
    json!({
        "count": s.count(),
        "mean_us": s.mean() / 1_000,
        "p50_us": s.quantile(0.5) / 1_000,
        "p90_us": s.quantile(0.9) / 1_000,
        "p99_us": s.quantile(0.99) / 1_000,
        "max_us": s.max / 1_000,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_sorted_for_binary_search() {
        let mut sorted = KINDS;
        sorted.sort_unstable();
        assert_eq!(sorted, KINDS);
        let m = ServerMetrics::new(Arc::new(Registry::new()));
        for kind in KINDS {
            assert_eq!(m.kind(kind).requests.get(), 0); // resolves without panicking
        }
    }

    #[test]
    fn served_requests_show_up_in_kind_stats() {
        let m = ServerMetrics::new(Arc::new(Registry::new()));
        m.kind("Sample").requests.inc();
        m.kind("Sample").requests.inc();
        m.record_served("Sample", Duration::from_micros(100), false);
        m.record_served("Sample", Duration::from_micros(300), true);
        let rows = m.kind_stats();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].kind, "Sample");
        assert_eq!((rows[0].count, rows[0].errors), (2, 1));
        assert!(rows[0].max_us >= 300, "{:?}", rows[0]);
        // Kinds with zero requests are omitted from the report.
        assert!(m.kind_stats().iter().all(|r| r.kind != "Ping"));
    }

    #[test]
    fn metrics_json_has_the_documented_shape() {
        let m = ServerMetrics::new(Arc::new(Registry::new()));
        m.kind("Ping").requests.inc();
        m.record_served("Ping", Duration::from_micros(5), false);
        let v = m.metrics_json();
        assert!(v.get("uptime_secs").unwrap().as_f64().unwrap() >= 0.0);
        let row = &v.get("kinds").unwrap().as_array().unwrap()[0];
        assert_eq!(row.get("kind").unwrap().as_str(), Some("Ping"));
        assert_eq!(row.get("count").unwrap().as_u64(), Some(1));
        let text = v.get("text").unwrap().as_str().unwrap().to_string();
        assert!(text.contains("motivo_server_requests_ping"), "{text}");
    }
}
