//! # motivo-server
//!
//! A std-only, event-driven TCP daemon serving motif-count queries over
//! a shared [`motivo_store::UrnStore`] — the step from a fast
//! single-process counter to a serving system. The store already gives us
//! durable urns, an LRU cache, a background build worker, and a
//! thread-safe query layer; this crate puts a network front on them:
//!
//! - **Wire protocol** ([`proto`]): length-prefixed JSON frames, typed on
//!   both ends as [`Request`]/[`Response`]. A `Hello` handshake announces
//!   protocol version, supported request kinds, and pipelining limits;
//!   responses carry `ok` payloads or structured errors, matched to
//!   pipelined requests by an echoed `id`. A `Batch` carries a list of
//!   sub-requests through one frame and one worker slot, answered in
//!   request order with per-sub-request envelopes.
//! - **Serving core** ([`server`]): one poll-based reactor thread
//!   ([`reactor`]) owning every socket — non-blocking accept,
//!   per-connection frame/write-buffer state machines, and timers —
//!   feeding a fixed-size worker pool through a bounded queue; workers
//!   hand completed responses back through a wakeup pipe instead of
//!   writing sockets. Thousands of idle connections cost no threads. A
//!   full queue (or a connection past its pipelining cap) answers `Busy`
//!   (backpressure, not buffering); a `Shutdown` request stops accepting,
//!   drains every accepted request, and flushes serving statistics into
//!   the store directory. Options come from [`ServeOptions::builder`].
//! - **Result cache** ([`cache`]): a byte-budgeted LRU over exact
//!   response payload bytes, keyed by the canonical request — exact
//!   because seeded responses are byte-deterministic — with singleflight
//!   dedup so N concurrent identical requests run the estimator once.
//! - **Client** ([`client`]): the typed blocking client behind `motivo
//!   client` and the integration tests — purpose-named methods like
//!   [`Client::naive_estimates`] over [`Request`]/[`Response`], with a
//!   [`Client::send_raw`] escape hatch for hand-authored JSON.
//! - **Metrics** ([`metrics`]): per-request-kind counters, error counts,
//!   and latency histograms (plus the queue-wait vs service-time split),
//!   registered in the store's [`motivo_obs::Registry`] next to its
//!   LRU/journal counters and the core's build spans. A `Metrics` request
//!   returns the quantile table and a Prometheus-style text rendering;
//!   `snapshot_secs` adds periodic JSON snapshots under the store
//!   directory.
//! - **Replication** ([`repl`]): leader/replica serving over the same
//!   wire protocol. A server started with `replica_of` tails the leader's
//!   journal into a read-only local store (mutations answer `ReadOnly`),
//!   bootstraps from its manifest snapshot, fetches sealed urn files it
//!   is missing, and — because responses are byte-deterministic — serves
//!   **identical** bytes to the leader once caught up. The sync session
//!   is a [`repl::replica::SyncDriver`] stepped by reactor timers on the
//!   worker pool, not a dedicated thread. `ReplStatus` reports role,
//!   offsets, and per-replica lag; `Promote` turns a replica into a
//!   leader (see DESIGN.md §8).
//!
//! Determinism is preserved across the wire: a request carrying a seed
//! produces byte-identical estimate payloads to the equivalent in-process
//! [`motivo_store::StoreQuery`] call, at any worker-pool size (see
//! DESIGN.md §6).
//!
//! ```no_run
//! use motivo_server::{Client, ServeOptions, Server};
//! use motivo_store::{UrnId, UrnStore};
//! use std::sync::Arc;
//!
//! let store = Arc::new(UrnStore::open("motif-store")?);
//! let opts = ServeOptions::builder().workers(2).build()?;
//! let server = Server::bind(store, "127.0.0.1:0", opts)?;
//! let mut client = Client::connect(server.addr())?;
//! let hello = client.hello()?;
//! println!("talking to {} (proto v{})", hello.server, hello.proto_version);
//! for urn in client.list_urns()?.urns {
//!     println!("{} k={} {}", urn.id, urn.k, urn.status);
//! }
//! let est = client.naive_estimates(UrnId(0), 10_000, 7)?;
//! println!("~{:.3e} copies", est.total_count);
//! client.shutdown()?;
//! let report = server.join();
//! println!("served {} requests", report.requests);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod reactor;
pub mod repl;
pub mod server;

pub use cache::{QueryCache, QueryCacheStats, Served};
pub use client::{Client, ClientError};
pub use metrics::{KindStats, ServerMetrics};
pub use proto::{
    ErrorKind, HelloReply, ReplTarget, Request, Response, MAX_PIPELINE, PROTO_VERSION,
};
pub use server::{ServeOptions, ServeOptionsBuilder, ServeReport, Server, DEFAULT_CACHE_BYTES};
