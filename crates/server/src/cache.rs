//! [`QueryCache`]: the deterministic query-result cache behind the serving
//! layer, plus its **singleflight** deduplication (DESIGN.md §6.5).
//!
//! Seeded estimate responses are byte-deterministic (the PR 2 seed-split
//! guarantee, asserted across the wire since PR 4), which makes this cache
//! *exact*: the value stored under a canonical request key is the response
//! payload text itself, and replaying it is indistinguishable from
//! recomputing it. Three mechanisms share the module:
//!
//! - a **byte-budgeted LRU** over `(key, payload)` pairs — the budget
//!   counts key bytes, payload bytes, and a fixed per-entry overhead, and
//!   eviction drops the least-recently-used entry first;
//! - **singleflight**: when N identical requests are in flight at once,
//!   one "leader" runs the estimator and every "follower" blocks on the
//!   leader's flight and receives the same `Arc`'d payload — N requests,
//!   one estimator run;
//! - **counters** ([`QueryCacheStats`]): hits, misses (= estimator runs
//!   through the cache), coalesced followers, evictions, and residency.
//!
//! Error results are published to the waiting followers of their flight
//! but never inserted into the LRU — a transient failure must not be
//! replayed forever. A zero byte budget disables residency (every request
//! recomputes) while keeping singleflight dedup active: coalescing
//! concurrent duplicates is free correctness-wise and saves work even
//! when nothing is retained.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::proto::ErrorKind;

/// A failed computation, as the worker reports it on the wire.
pub type QueryError = (ErrorKind, String);

/// Fixed accounting overhead per resident entry (map slot, recency stamp,
/// `Arc` headers) — keeps a budget of tiny entries honest.
const ENTRY_OVERHEAD: u64 = 64;

/// How a request was satisfied, for callers that want to attribute work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Replayed from the LRU; no estimator ran.
    Hit,
    /// This request led a flight and ran the estimator.
    Miss,
    /// Joined another request's in-flight computation and received its
    /// payload; no estimator ran.
    Coalesced,
}

/// Aggregate cache counters — a consistent-enough snapshot of live
/// atomics, plus the residency read under the LRU lock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Requests replayed from the LRU.
    pub hits: u64,
    /// Requests that led a flight and ran the estimator.
    pub misses: u64,
    /// Requests that joined an in-flight leader instead of recomputing.
    pub coalesced: u64,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Bytes resident right now (keys + payloads + per-entry overhead).
    pub resident_bytes: u64,
    /// Entries resident right now.
    pub resident_entries: u64,
}

struct Entry {
    payload: Arc<str>,
    last_used: u64,
}

/// Residency map plus a recency index: `order` maps each entry's
/// `last_used` tick (unique — ticks only ever increase) back to its key,
/// so the eviction victim is `order.first_key_value()` in O(log n)
/// instead of a full scan per eviction.
struct Lru {
    entries: HashMap<Arc<str>, Entry>,
    order: BTreeMap<u64, Arc<str>>,
    resident_bytes: u64,
    tick: u64,
}

impl Lru {
    fn entry_bytes(key: &str, payload: &str) -> u64 {
        key.len() as u64 + payload.len() as u64 + ENTRY_OVERHEAD
    }
}

/// One in-flight computation. Followers block on `done` until the leader
/// publishes a result into `state`.
#[derive(Default)]
struct Flight {
    state: Mutex<Option<Result<Arc<str>, QueryError>>>,
    done: Condvar,
}

impl Flight {
    fn publish(&self, result: Result<Arc<str>, QueryError>) {
        *self.state.lock().expect("flight poisoned") = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<str>, QueryError> {
        let mut state = self.state.lock().expect("flight poisoned");
        while state.is_none() {
            state = self.done.wait(state).expect("flight poisoned");
        }
        state.clone().expect("loop exits on Some")
    }
}

/// Completes the leader's flight even if the computation panics: the
/// normal path marks the guard done; the drop path publishes an error so
/// followers wake instead of waiting forever, and deregisters the flight.
struct LeadGuard<'c> {
    cache: &'c QueryCache,
    key: &'c str,
    flight: Arc<Flight>,
    completed: bool,
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.flight.publish(Err((
                ErrorKind::Store,
                "query computation panicked".to_string(),
            )));
            self.cache.deregister(self.key);
        }
    }
}

/// The serving-layer result cache. Thread-safe; one per [`crate::Server`].
///
/// ```
/// use motivo_server::cache::{QueryCache, Served};
///
/// let cache = QueryCache::new(1 << 20);
/// let (first, how) = cache.serve("key", || Ok("payload".to_string()));
/// assert_eq!((first.unwrap().as_ref(), how), ("payload", Served::Miss));
/// // The second identical request replays the exact bytes — the closure
/// // never runs again.
/// let (second, how) = cache.serve("key", || panic!("must not recompute"));
/// assert_eq!((second.unwrap().as_ref(), how), ("payload", Served::Hit));
/// ```
pub struct QueryCache {
    budget_bytes: u64,
    lru: Mutex<Lru>,
    flights: Mutex<HashMap<Arc<str>, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    /// A cache retaining at most `budget_bytes` of keys + payloads
    /// (0 = retain nothing; singleflight dedup stays active).
    pub fn new(budget_bytes: u64) -> QueryCache {
        QueryCache {
            budget_bytes,
            lru: Mutex::new(Lru {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                resident_bytes: 0,
                tick: 0,
            }),
            flights: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Serves one request: replay from the LRU, join an identical
    /// in-flight computation, or lead one by running `compute`. The
    /// returned payload is the exact text the leader computed — for a
    /// deterministic request, byte-identical no matter which path
    /// answered it.
    pub fn serve(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<String, QueryError>,
    ) -> (Result<Arc<str>, QueryError>, Served) {
        if let Some(payload) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Ok(payload), Served::Hit);
        }
        let (flight, leads) = {
            let mut flights = self.flights.lock().expect("flights poisoned");
            // Recheck residency under the flights lock: a leader publishes
            // to the LRU *before* deregistering its flight, so "no flight
            // registered" + "not resident" here proves nobody computed
            // this key — the lookup/registration pair is race-free.
            if let Some(payload) = self.lookup(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (Ok(payload), Served::Hit);
            }
            match flights.get(key) {
                Some(f) => (f.clone(), false),
                None => {
                    let f = Arc::new(Flight::default());
                    flights.insert(Arc::from(key), f.clone());
                    (f, true)
                }
            }
        };
        if !leads {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return (flight.wait(), Served::Coalesced);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = LeadGuard {
            cache: self,
            key,
            flight,
            completed: false,
        };
        let result: Result<Arc<str>, QueryError> = compute().map(Arc::from);
        if let Ok(payload) = &result {
            self.insert(key, payload.clone());
        }
        guard.flight.publish(result.clone());
        guard.completed = true;
        self.deregister(key);
        (result, Served::Miss)
    }

    /// Current counters.
    pub fn stats(&self) -> QueryCacheStats {
        let lru = self.lru.lock().expect("query cache poisoned");
        QueryCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: lru.resident_bytes,
            resident_entries: lru.entries.len() as u64,
        }
    }

    fn lookup(&self, key: &str) -> Option<Arc<str>> {
        let mut lru = self.lru.lock().expect("query cache poisoned");
        lru.tick += 1;
        let tick = lru.tick;
        let (stale, payload, owned_key) = match lru.entries.get_mut(key) {
            None => return None,
            Some(e) => {
                let stale = e.last_used;
                e.last_used = tick;
                (stale, e.payload.clone(), lru.order[&stale].clone())
            }
        };
        lru.order.remove(&stale);
        lru.order.insert(tick, owned_key);
        Some(payload)
    }

    /// Inserts a computed payload, evicting least-recently-used entries
    /// until the budget holds. An entry larger than the whole budget is
    /// not retained at all.
    fn insert(&self, key: &str, payload: Arc<str>) {
        let bytes = Lru::entry_bytes(key, &payload);
        if bytes > self.budget_bytes {
            return;
        }
        let mut lru = self.lru.lock().expect("query cache poisoned");
        lru.tick += 1;
        let tick = lru.tick;
        let owned_key: Arc<str> = Arc::from(key);
        if let Some(old) = lru.entries.insert(
            owned_key.clone(),
            Entry {
                payload,
                last_used: tick,
            },
        ) {
            lru.resident_bytes -= Lru::entry_bytes(key, &old.payload);
            lru.order.remove(&old.last_used);
        }
        lru.order.insert(tick, owned_key);
        lru.resident_bytes += bytes;
        while lru.resident_bytes > self.budget_bytes {
            // The coldest entry is the front of the recency index; the
            // just-inserted entry holds the newest tick, so it is only
            // the front when it is the last one left — keep it then.
            match lru.order.first_key_value() {
                Some((&t, _)) if t != tick => {
                    let k = lru.order.remove(&t).expect("index entry present");
                    let e = lru.entries.remove(&k).expect("entry present");
                    lru.resident_bytes -= Lru::entry_bytes(&k, &e.payload);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                _ => break,
            }
        }
    }

    fn deregister(&self, key: &str) {
        self.flights.lock().expect("flights poisoned").remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hit_replays_exact_bytes_without_recompute() {
        let cache = QueryCache::new(1 << 16);
        let runs = AtomicUsize::new(0);
        let compute = || {
            runs.fetch_add(1, Ordering::SeqCst);
            Ok("{\"total\":42}".to_string())
        };
        let (cold, how) = cache.serve("k1", compute);
        assert_eq!(how, Served::Miss);
        let (warm, how) = cache.serve("k1", compute);
        assert_eq!(how, Served::Hit);
        assert_eq!(cold.unwrap(), warm.unwrap(), "warm bytes == cold bytes");
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one computation");
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.coalesced), (1, 1, 0));
        assert_eq!(st.resident_entries, 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = QueryCache::new(1 << 16);
        let (a, _) = cache.serve("a", || Ok("payload-a".into()));
        let (b, _) = cache.serve("b", || Ok("payload-b".into()));
        assert_eq!(a.unwrap().as_ref(), "payload-a");
        assert_eq!(b.unwrap().as_ref(), "payload-b");
    }

    #[test]
    fn errors_propagate_but_are_not_cached() {
        let cache = QueryCache::new(1 << 16);
        let (err, how) = cache.serve("k", || Err((ErrorKind::NotBuilt, "pending".into())));
        assert_eq!(how, Served::Miss);
        assert_eq!(err.unwrap_err().0, ErrorKind::NotBuilt);
        // The failure is retried, not replayed.
        let (ok, how) = cache.serve("k", || Ok("fine".into()));
        assert_eq!(how, Served::Miss);
        assert_eq!(ok.unwrap().as_ref(), "fine");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        // Room for exactly two of the three entries.
        let one = Lru::entry_bytes("k1", "x");
        let cache = QueryCache::new(one * 2 + one / 2);
        cache.serve("k1", || Ok("x".into())).0.unwrap();
        cache.serve("k2", || Ok("y".into())).0.unwrap();
        // Touch k1 so k2 is the coldest.
        assert_eq!(
            cache.serve("k1", || Err((ErrorKind::Store, "".into()))).1,
            Served::Hit
        );
        cache.serve("k3", || Ok("z".into())).0.unwrap();
        let st = cache.stats();
        assert_eq!((st.evictions, st.resident_entries), (1, 2));
        assert_eq!(
            cache.serve("k1", || Err((ErrorKind::Store, "".into()))).1,
            Served::Hit
        );
        assert_eq!(
            cache.serve("k2", || Ok("y".into())).1,
            Served::Miss,
            "k2 was evicted"
        );
    }

    #[test]
    fn zero_budget_disables_residency() {
        let cache = QueryCache::new(0);
        assert_eq!(cache.serve("k", || Ok("p".into())).1, Served::Miss);
        assert_eq!(cache.serve("k", || Ok("p".into())).1, Served::Miss);
        let st = cache.stats();
        assert_eq!((st.resident_entries, st.misses), (0, 2));
    }

    #[test]
    fn oversized_payload_is_not_retained() {
        let cache = QueryCache::new(32);
        let big = "x".repeat(1000);
        cache.serve("k", || Ok(big.clone())).0.unwrap();
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(cache.serve("k", || Ok(big.clone())).1, Served::Miss);
    }

    /// The singleflight contract: 32 threads requesting one key while the
    /// leader computes produce exactly one computation, and every thread
    /// receives the same payload bytes.
    #[test]
    fn singleflight_coalesces_concurrent_identical_requests() {
        let cache = QueryCache::new(1 << 16);
        let runs = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(32);
        let payloads: Vec<Arc<str>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..32)
                .map(|_| {
                    let (cache, runs, barrier) = (&cache, &runs, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        let (res, _) = cache.serve("hot", || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that the
                            // stragglers coalesce instead of hitting.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            Ok("{\"estimate\":7}".to_string())
                        });
                        res.unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one estimator run");
        assert_eq!(payloads.len(), 32);
        assert!(
            payloads.iter().all(|p| p.as_ref() == "{\"estimate\":7}"),
            "all 32 payloads identical"
        );
        let st = cache.stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.hits + st.coalesced, 31, "{st:?}");
    }

    /// A panicking leader must wake its followers with an error, not
    /// strand them on the condvar.
    #[test]
    fn panicking_leader_releases_followers() {
        let cache = QueryCache::new(1 << 16);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            let (cache, barrier) = (&cache, &barrier);
            let leader = s.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.serve("k", || {
                        barrier.wait();
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("estimator blew up");
                    })
                }));
                assert!(result.is_err(), "panic propagates to the leader");
            });
            let follower = s.spawn(move || {
                barrier.wait();
                // By now the leader holds the flight; join it.
                let (res, _) = cache.serve("k", || Ok("recomputed".into()));
                res
            });
            leader.join().unwrap();
            let res = follower.join().unwrap();
            match res {
                // Usual case: the follower joined the doomed flight and
                // got the panic error.
                Err((kind, msg)) => {
                    assert_eq!(kind, ErrorKind::Store);
                    assert!(msg.contains("panicked"), "{msg}");
                }
                // Rare scheduling: the follower arrived after cleanup and
                // recomputed successfully. Also correct.
                Ok(p) => assert_eq!(p.as_ref(), "recomputed"),
            }
        });
    }
}
