//! A small blocking client for the wire protocol — what `motivo client`
//! and the integration tests drive. One request in flight at a time; for
//! pipelining, open several clients or speak [`crate::proto`] directly.
//!
//! The supported surface is **typed**: build a [`Request`], get a
//! [`Response`] (or a purpose-named helper like [`Client::ping`] /
//! [`Client::naive_estimates`]). [`Client::send_raw`] remains as the
//! escape hatch for hand-authored JSON — what `motivo client` forwards
//! verbatim — and [`Client::request`] for callers that want the raw
//! payload [`Value`] of a typed request.

use serde_json::Value;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    self, AgsReply, BuildReply, EstimatesReply, HelloReply, PromoteReply, ReplFetchReply,
    ReplFileReply, ReplManifestReply, ReplTarget, Request, Response, TallyReply, UrnsReply,
    FEATURES, PROTO_VERSION,
};
use motivo_store::{FileMeta, UrnId};

/// Client-side failures: transport errors, or a server `error` envelope.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or framing failure.
    Io(std::io::Error),
    /// The response frame wasn't valid JSON, or its payload didn't have
    /// the shape the request kind promises.
    BadResponse(String),
    /// The server answered with an error envelope (kind, message).
    Server { kind: String, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::BadResponse(msg) => write!(f, "malformed response: {msg}"),
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A response payload that decoded into an unexpected [`Response`]
/// variant — impossible unless `Response::parse`'s kind table is wrong.
fn variant_mismatch(kind: &str) -> ClientError {
    ClientError::BadResponse(format!("response decoded into the wrong variant for `{kind}`"))
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running `motivo serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // A vanished server should fail the call, not hang it forever.
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        // Request frames are small; waiting for Nagle to coalesce them
        // just adds a delayed-ACK round trip to every query.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    // -- typed surface ------------------------------------------------------

    /// Sends one typed request and decodes the reply into the matching
    /// [`Response`] variant. Server error envelopes become
    /// [`ClientError::Server`].
    pub fn send(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = self.request(&req.to_value())?;
        Response::parse(req.kind(), &payload).map_err(ClientError::BadResponse)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.send(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(variant_mismatch("Ping")),
        }
    }

    /// Version/capability handshake: announces this client's protocol
    /// version and features, returns what the server speaks. Servers
    /// answer it inline, so it works even against a saturated pool.
    pub fn hello(&mut self) -> Result<HelloReply, ClientError> {
        let req = Request::Hello {
            proto_version: PROTO_VERSION,
            features: FEATURES.iter().map(|f| f.to_string()).collect(),
        };
        match self.send(&req)? {
            Response::Hello(h) => Ok(h),
            _ => Err(variant_mismatch("Hello")),
        }
    }

    /// Lists every urn the server's manifest knows.
    pub fn list_urns(&mut self) -> Result<UrnsReply, ClientError> {
        match self.send(&Request::ListUrns)? {
            Response::Urns(u) => Ok(u),
            _ => Err(variant_mismatch("ListUrns")),
        }
    }

    /// Seeded naive estimates against a built urn (server-side thread
    /// count left to the server; send a full [`Request::NaiveEstimates`]
    /// through [`Client::send`] to pin it).
    pub fn naive_estimates(
        &mut self,
        urn: UrnId,
        samples: u64,
        seed: u64,
    ) -> Result<EstimatesReply, ClientError> {
        let req = Request::NaiveEstimates {
            urn,
            samples,
            seed,
            threads: 0,
        };
        match self.send(&req)? {
            Response::Estimates(e) => Ok(e),
            _ => Err(variant_mismatch("NaiveEstimates")),
        }
    }

    /// Adaptive graphlet sampling with the server-side default knobs
    /// (send a full [`Request::Ags`] through [`Client::send`] for
    /// `c_bar`/`epoch`/`idle_limit`).
    pub fn ags(
        &mut self,
        urn: UrnId,
        max_samples: u64,
        seed: u64,
    ) -> Result<AgsReply, ClientError> {
        let req = Request::Ags {
            urn,
            max_samples,
            c_bar: None,
            epoch: None,
            idle_limit: None,
            seed,
            threads: 0,
        };
        match self.send(&req)? {
            Response::Ags(a) => Ok(a),
            _ => Err(variant_mismatch("Ags")),
        }
    }

    /// A raw canonical-code tally of sampled graphlet copies.
    pub fn sample(
        &mut self,
        urn: UrnId,
        samples: u64,
        seed: u64,
    ) -> Result<TallyReply, ClientError> {
        let req = Request::Sample {
            urn,
            samples,
            seed,
            threads: 0,
        };
        match self.send(&req)? {
            Response::Tally(t) => Ok(t),
            _ => Err(variant_mismatch("Sample")),
        }
    }

    /// Serving counters (raw payload — a diagnostic document, not a
    /// frozen schema).
    pub fn stats(&mut self, urn: Option<UrnId>) -> Result<Value, ClientError> {
        match self.send(&Request::Stats { urn })? {
            Response::Stats(v) => Ok(v),
            _ => Err(variant_mismatch("Stats")),
        }
    }

    /// The server's metrics registry (raw payload, same reasoning).
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        match self.send(&Request::Metrics)? {
            Response::Metrics(v) => Ok(v),
            _ => Err(variant_mismatch("Metrics")),
        }
    }

    /// Enqueues a build of `graph` (a path readable by the *server*) and
    /// optionally waits for it.
    pub fn build(
        &mut self,
        graph: impl Into<String>,
        k: u32,
        seed: u64,
        wait: bool,
    ) -> Result<BuildReply, ClientError> {
        let req = Request::Build {
            graph: graph.into(),
            k,
            seed,
            lambda: None,
            codec: Default::default(),
            wait,
        };
        match self.send(&req)? {
            Response::Build(b) => Ok(b),
            _ => Err(variant_mismatch("Build")),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.send(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(variant_mismatch("Shutdown")),
        }
    }

    /// Replication health (raw payload).
    pub fn repl_status(&mut self) -> Result<Value, ClientError> {
        match self.send(&Request::ReplStatus)? {
            Response::ReplStatus(v) => Ok(v),
            _ => Err(variant_mismatch("ReplStatus")),
        }
    }

    /// Turns a replica into a leader.
    pub fn promote(&mut self) -> Result<PromoteReply, ClientError> {
        match self.send(&Request::Promote)? {
            Response::Promote(p) => Ok(p),
            _ => Err(variant_mismatch("Promote")),
        }
    }

    /// Pulls journal frames from a leader (the replica sync path).
    pub fn repl_fetch(
        &mut self,
        replica: impl Into<String>,
        offset: u64,
        prefix_crc: u32,
        log_id: u32,
    ) -> Result<ReplFetchReply, ClientError> {
        let req = Request::ReplFetch {
            replica: replica.into(),
            offset,
            prefix_crc,
            log_id,
        };
        match self.send(&req)? {
            Response::ReplFetch(r) => Ok(r),
            _ => Err(variant_mismatch("ReplFetch")),
        }
    }

    /// Fetches the leader's manifest snapshot bytes.
    pub fn repl_manifest(&mut self) -> Result<ReplManifestReply, ClientError> {
        match self.send(&Request::ReplManifest)? {
            Response::ReplManifest(m) => Ok(m),
            _ => Err(variant_mismatch("ReplManifest")),
        }
    }

    /// Fetches the leader's file inventory for one urn or graph.
    pub fn repl_files(
        &mut self,
        target: ReplTarget,
        replica: Option<String>,
    ) -> Result<Vec<FileMeta>, ClientError> {
        match self.send(&Request::ReplFiles { target, replica })? {
            Response::ReplFiles(f) => Ok(f),
            _ => Err(variant_mismatch("ReplFiles")),
        }
    }

    /// Fetches one chunk of a sealed urn or graph file.
    pub fn repl_file(
        &mut self,
        target: ReplTarget,
        name: impl Into<String>,
        offset: u64,
        replica: Option<String>,
    ) -> Result<ReplFileReply, ClientError> {
        let req = Request::ReplFile {
            target,
            name: name.into(),
            offset,
            replica,
        };
        match self.send(&req)? {
            Response::ReplFile(f) => Ok(f),
            _ => Err(variant_mismatch("ReplFile")),
        }
    }

    // -- raw escape hatches -------------------------------------------------

    /// Sends one request document and returns the full response envelope
    /// (`{"id": …, "ok": …}` or `{"id": …, "error": …}`), without
    /// interpreting it.
    pub fn roundtrip(&mut self, request: &Value) -> Result<Value, ClientError> {
        let text =
            serde_json::to_string(request).map_err(|e| ClientError::BadResponse(e.to_string()))?;
        self.send_raw(&text).and_then(|raw| {
            serde_json::from_str(&raw).map_err(|e| ClientError::BadResponse(e.to_string()))
        })
    }

    /// Like [`Client::roundtrip`], but over raw JSON text in both
    /// directions (what `motivo client` uses — the request is the user's
    /// own bytes, the response is printed verbatim).
    pub fn send_raw(&mut self, request: &str) -> Result<String, ClientError> {
        proto::write_frame(&mut self.stream, request.as_bytes())?;
        let payload = proto::read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Io(std::io::ErrorKind::UnexpectedEof.into()))?;
        String::from_utf8(payload).map_err(|_| ClientError::BadResponse("not UTF-8".into()))
    }

    /// Sends one request and unwraps the envelope: the `ok` payload, or
    /// [`ClientError::Server`] carrying the error kind and message.
    pub fn request(&mut self, request: &Value) -> Result<Value, ClientError> {
        let envelope = self.roundtrip(request)?;
        if let Some(ok) = envelope.get("ok") {
            return Ok(ok);
        }
        match envelope.get("error") {
            Some(err) => Err(ClientError::Server {
                kind: err
                    .get("kind")
                    .and_then(|k| k.as_str().map(str::to_string))
                    .unwrap_or_else(|| "Unknown".into()),
                message: err
                    .get("message")
                    .and_then(|m| m.as_str().map(str::to_string))
                    .unwrap_or_default(),
            }),
            None => Err(ClientError::BadResponse(
                "envelope has neither `ok` nor `error`".into(),
            )),
        }
    }
}
