//! A small blocking client for the wire protocol — what `motivo client`
//! and the integration tests drive. One request in flight at a time; for
//! pipelining, open several clients or speak [`crate::proto`] directly.

use serde_json::Value;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto;

/// Client-side failures: transport errors, or a server `error` envelope.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or framing failure.
    Io(std::io::Error),
    /// The response frame wasn't valid JSON.
    BadResponse(String),
    /// The server answered with an error envelope (kind, message).
    Server { kind: String, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::BadResponse(msg) => write!(f, "malformed response: {msg}"),
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running `motivo serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // A vanished server should fail the call, not hang it forever.
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        // Request frames are small; waiting for Nagle to coalesce them
        // just adds a delayed-ACK round trip to every query.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request document and returns the full response envelope
    /// (`{"id": …, "ok": …}` or `{"id": …, "error": …}`), without
    /// interpreting it.
    pub fn roundtrip(&mut self, request: &Value) -> Result<Value, ClientError> {
        let text =
            serde_json::to_string(request).map_err(|e| ClientError::BadResponse(e.to_string()))?;
        self.roundtrip_raw(&text).and_then(|raw| {
            serde_json::from_str(&raw).map_err(|e| ClientError::BadResponse(e.to_string()))
        })
    }

    /// Like [`Client::roundtrip`], but over raw JSON text in both
    /// directions (what `motivo client` uses — the request is the user's
    /// own bytes, the response is printed verbatim).
    pub fn roundtrip_raw(&mut self, request: &str) -> Result<String, ClientError> {
        proto::write_frame(&mut self.stream, request.as_bytes())?;
        let payload = proto::read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Io(std::io::ErrorKind::UnexpectedEof.into()))?;
        String::from_utf8(payload).map_err(|_| ClientError::BadResponse("not UTF-8".into()))
    }

    /// Sends one request and unwraps the envelope: the `ok` payload, or
    /// [`ClientError::Server`] carrying the error kind and message.
    pub fn request(&mut self, request: &Value) -> Result<Value, ClientError> {
        let envelope = self.roundtrip(request)?;
        if let Some(ok) = envelope.get("ok") {
            return Ok(ok);
        }
        match envelope.get("error") {
            Some(err) => Err(ClientError::Server {
                kind: err
                    .get("kind")
                    .and_then(|k| k.as_str().map(str::to_string))
                    .unwrap_or_else(|| "Unknown".into()),
                message: err
                    .get("message")
                    .and_then(|m| m.as_str().map(str::to_string))
                    .unwrap_or_default(),
            }),
            None => Err(ClientError::BadResponse(
                "envelope has neither `ok` nor `error`".into(),
            )),
        }
    }
}
