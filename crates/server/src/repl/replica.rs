//! The replica's sync loop: one thread inside a replica server that
//! keeps its read-only store converging toward the leader.
//!
//! Each session connects, heals (fetches any file the local manifest
//! references but the disk lacks — a crash can land between a file fetch
//! and the journal append that needed it), then tails the leader:
//!
//! 1. send `ReplFetch` with the local `(offset, prefix_crc, log_id)`
//!    cursor ([`motivo_store::UrnStore::replication_cursor`]);
//! 2. if the leader flags the cursor `stale` (it gc-compacted, or this
//!    replica's log is from another lineage), re-bootstrap: install its
//!    `ReplManifest` snapshot, then heal files again — files already on
//!    disk with matching length+crc are **not** refetched, so a
//!    bootstrap after gc moves metadata, not tables;
//! 3. otherwise, for each returned journal frame: fetch the files the
//!    record will reference *first* (`BuildFinished` → the urn's sealed
//!    tables, `GraphAdded` → the cached graph), then append+apply it.
//!    Files-before-journal is the crash-safety order — if the process
//!    dies mid-fetch the journal hasn't advanced, and the re-fetch after
//!    restart skips everything already on disk.
//!
//! Connection errors tear the session down and retry under
//! [`super::backoff::Backoff`]; a `Promote` (or server shutdown) stops
//! the loop at its next check.

use crate::client::Client;
use crate::repl::backoff::Backoff;
use crate::repl::protocol::{field_bytes, field_u64, hex_decode};
use crate::repl::ReplShared;
use motivo_core::checksum::crc32;
use motivo_store::{BuildStatus, FileMeta, ManifestRecord, StoreError, UrnId, UrnStore};
use serde_json::{json, Value};
use std::time::Duration;

/// How a replica server reaches its leader.
pub struct SyncOptions {
    /// The leader's `host:port`.
    pub leader: String,
    /// This replica's name in the leader's registry (its own serve
    /// address, so `ReplStatus` on the leader reads like a topology map).
    pub name: String,
    /// Delay between fetches once caught up.
    pub poll: Duration,
}

/// The sync loop's self-reported state, served by `ReplStatus` on the
/// replica.
#[derive(Clone, Debug, Default)]
pub struct SyncStatus {
    /// A session to the leader is currently up.
    pub connected: bool,
    /// The last fetch found nothing left to pull.
    pub caught_up: bool,
    /// Local durable journal offset after the last apply.
    pub offset: u64,
    /// The leader's journal length at the last fetch.
    pub leader_len: u64,
    /// Snapshot installs (1 for a clean start; +1 per gc re-bootstrap).
    pub bootstraps: u64,
    /// `ReplFetch` round-trips made.
    pub fetches: u64,
    /// Files actually downloaded (heals that found everything present
    /// don't move this — the no-refetch invariant, observable here).
    pub files_fetched: u64,
    /// Journal records applied locally.
    pub records_applied: u64,
    /// The most recent session-ending error, kept after reconnect until
    /// a session succeeds.
    pub last_error: Option<String>,
}

/// Serializes the status for `ReplStatus`.
pub fn sync_status_json(s: &SyncStatus) -> Value {
    json!({
        "connected": s.connected,
        "caught_up": s.caught_up,
        "offset": s.offset,
        "leader_len": s.leader_len,
        "bootstraps": s.bootstraps,
        "fetches": s.fetches,
        "files_fetched": s.files_fetched,
        "records_applied": s.records_applied,
        "last_error": s.last_error,
    })
}

fn estore(e: StoreError) -> String {
    format!("store: {e}")
}

fn with_status(shared: &ReplShared, f: impl FnOnce(&mut SyncStatus)) {
    let mut st = shared.sync.lock().expect("sync status poisoned");
    f(&mut st);
}

fn sleep_unless_stopped(total: Duration, stopped: &dyn Fn() -> bool) {
    let slice = Duration::from_millis(20);
    let mut left = total;
    while !stopped() && !left.is_zero() {
        let d = left.min(slice);
        std::thread::sleep(d);
        left -= d;
    }
}

/// Runs until `stopped` reports true (server shutdown or promotion).
/// Never returns early on error: every failure is recorded in
/// [`SyncStatus::last_error`] and retried under exponential backoff.
pub fn sync_loop(
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
    stop: &dyn Fn() -> bool,
) {
    let mut backoff = Backoff::new(Duration::from_millis(100), Duration::from_secs(5));
    let stopped = || stop() || shared.sync_stopped();
    while !stopped() {
        match sync_session(store, shared, opts, &stopped, &mut backoff) {
            Ok(()) => break, // a session only ends cleanly when stopped
            Err(e) => {
                with_status(shared, |st| {
                    st.connected = false;
                    st.caught_up = false;
                    st.last_error = Some(e);
                });
                sleep_unless_stopped(backoff.next_delay(), &stopped);
            }
        }
    }
    with_status(shared, |st| {
        st.connected = false;
    });
}

fn sync_session(
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
    stopped: &dyn Fn() -> bool,
    backoff: &mut Backoff,
) -> Result<(), String> {
    let mut client =
        Client::connect(&opts.leader).map_err(|e| format!("connect {}: {e}", opts.leader))?;
    // Heal before tailing: a crash mid-bootstrap or mid-fetch may have
    // left manifest entries whose files never fully landed.
    ensure_all_files(&mut client, store, shared, opts)?;
    backoff.reset();
    with_status(shared, |st| {
        st.connected = true;
        st.last_error = None;
    });
    loop {
        if stopped() {
            return Ok(());
        }
        let caught_up = poll_once(&mut client, store, shared, opts)?;
        if caught_up {
            sleep_unless_stopped(opts.poll, stopped);
        }
    }
}

/// One fetch/apply round; returns whether the replica is caught up.
fn poll_once(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
) -> Result<bool, String> {
    let (offset, prefix_crc) = store.replication_cursor().map_err(estore)?;
    let log_id = store.log_id().map_err(estore)?;
    let resp = client
        .request(&json!({
            "type": "ReplFetch",
            "replica": opts.name,
            "offset": offset,
            "prefix_crc": prefix_crc,
            "log_id": log_id,
        }))
        .map_err(|e| format!("ReplFetch: {e}"))?;
    with_status(shared, |st| st.fetches += 1);

    if resp.get("stale").and_then(|v| v.as_bool()).unwrap_or(false) {
        bootstrap(client, store, shared, opts)?;
        return Ok(false);
    }

    let leader_len = field_u64(&resp, "leader_len")?;
    let payloads = resp
        .get("payloads")
        .and_then(|v| v.as_array())
        .ok_or("leader response missing `payloads`")?;
    for p in &payloads {
        let hex = p.as_str().ok_or("journal payload must be a hex string")?;
        let bytes = hex_decode(hex)?;
        let rec = ManifestRecord::decode(&bytes).map_err(estore)?;
        ensure_record_files(client, store, shared, opts, &rec)?;
        store
            .apply_replicated(std::slice::from_ref(&bytes))
            .map_err(estore)?;
        with_status(shared, |st| st.records_applied += 1);
    }

    let new_offset = store.replication_offset();
    let caught_up = new_offset >= leader_len;
    with_status(shared, |st| {
        st.offset = new_offset;
        st.leader_len = leader_len;
        st.caught_up = caught_up;
    });
    Ok(caught_up)
}

/// Installs the leader's manifest snapshot (resetting the local journal
/// to offset 0) and heals files against the new manifest. Urn ids are
/// stable across gc, so tables already fetched survive a re-bootstrap.
fn bootstrap(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
) -> Result<(), String> {
    let resp = client
        .request(&json!({"type": "ReplManifest"}))
        .map_err(|e| format!("ReplManifest: {e}"))?;
    let bytes = field_bytes(&resp, "manifest")?;
    store.install_manifest(&bytes).map_err(estore)?;
    with_status(shared, |st| {
        st.bootstraps += 1;
        st.offset = 0;
    });
    ensure_all_files(client, store, shared, opts)
}

/// Fetches every file the local manifest references but the local disk
/// lacks (or holds with the wrong length/crc). Files already present and
/// matching are skipped — asserted by the resume tests via the leader's
/// `files_served` counter.
fn ensure_all_files(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
) -> Result<(), String> {
    for g in store.graphs() {
        ensure_graph_file(client, store, shared, opts, g.fingerprint)?;
    }
    for m in store.list() {
        if m.status == BuildStatus::Built {
            ensure_urn_files(client, store, shared, opts, m.id)?;
        }
    }
    Ok(())
}

/// Fetches what one journal record is about to reference.
fn ensure_record_files(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
    rec: &ManifestRecord,
) -> Result<(), String> {
    match rec {
        ManifestRecord::GraphAdded(g) => {
            ensure_graph_file(client, store, shared, opts, g.fingerprint)
        }
        ManifestRecord::BuildFinished { id, .. } => {
            ensure_urn_files(client, store, shared, opts, *id)
        }
        _ => Ok(()),
    }
}

fn parse_files(resp: &Value) -> Result<Vec<FileMeta>, String> {
    let rows = resp
        .get("files")
        .and_then(|v| v.as_array())
        .ok_or("leader response missing `files`")?;
    rows.iter()
        .map(|r| {
            let name = r.get("name").ok_or("file row missing `name`")?;
            let name = name.as_str().ok_or("file row missing `name`")?.to_string();
            Ok(FileMeta {
                name,
                len: field_u64(r, "len")?,
                crc: field_u64(r, "crc")? as u32,
            })
        })
        .collect()
}

fn ensure_urn_files(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
    id: UrnId,
) -> Result<(), String> {
    let resp = client
        .request(&json!({"type": "ReplFiles", "urn": id.0, "replica": opts.name}))
        .map_err(|e| format!("ReplFiles urn-{}: {e}", id.0))?;
    let leader_files = parse_files(&resp)?;
    let local = store.urn_file_list(id).map_err(estore)?;
    for meta in leader_files {
        if local
            .iter()
            .any(|l| l.name == meta.name && l.len == meta.len && l.crc == meta.crc)
        {
            continue;
        }
        let bytes = fetch_file(client, shared, opts, ("urn", json!(id.0)), &meta)?;
        store
            .install_urn_file(id, &meta.name, &bytes)
            .map_err(estore)?;
    }
    Ok(())
}

fn ensure_graph_file(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
    fingerprint: u64,
) -> Result<(), String> {
    let fp = format!("{fingerprint:016x}");
    let resp = client
        .request(&json!({"type": "ReplFiles", "graph": fp, "replica": opts.name}))
        .map_err(|e| format!("ReplFiles graph {fp}: {e}"))?;
    // Zero rows: the leader has no cached graph file (graphs are an
    // optimization for re-builds, not required to serve) — nothing to do.
    let Some(meta) = parse_files(&resp)?.into_iter().next() else {
        return Ok(());
    };
    let local = store.graph_file_meta(fingerprint).map_err(estore)?;
    if local.is_some_and(|l| l.len == meta.len && l.crc == meta.crc) {
        return Ok(());
    }
    let bytes = fetch_file(client, shared, opts, ("graph", json!(fp)), &meta)?;
    store
        .install_graph_file(fingerprint, &bytes)
        .map_err(estore)?;
    Ok(())
}

/// Downloads one file in chunks and verifies its length and crc against
/// the inventory row before handing it back for an atomic install.
fn fetch_file(
    client: &mut Client,
    shared: &ReplShared,
    opts: &SyncOptions,
    target: (&str, Value),
    meta: &FileMeta,
) -> Result<Vec<u8>, String> {
    let mut bytes: Vec<u8> = Vec::with_capacity(meta.len as usize);
    loop {
        let doc = if target.0 == "urn" {
            json!({
                "type": "ReplFile",
                "urn": target.1.clone(),
                "name": meta.name,
                "offset": bytes.len() as u64,
                "replica": opts.name,
            })
        } else {
            json!({
                "type": "ReplFile",
                "graph": target.1.clone(),
                "name": meta.name,
                "offset": bytes.len() as u64,
                "replica": opts.name,
            })
        };
        let resp = client
            .request(&doc)
            .map_err(|e| format!("ReplFile {}: {e}", meta.name))?;
        let data = field_bytes(&resp, "data")?;
        let total = field_u64(&resp, "total")?;
        if data.is_empty() && (bytes.len() as u64) < total {
            return Err(format!("ReplFile {}: empty chunk before EOF", meta.name));
        }
        bytes.extend_from_slice(&data);
        if bytes.len() as u64 >= total {
            break;
        }
    }
    if bytes.len() as u64 != meta.len || crc32(&bytes) != meta.crc {
        // The leader's file changed under us (a gc, a re-build): fail the
        // session; the reconnect heal sees the new inventory.
        return Err(format!(
            "ReplFile {}: fetched {} bytes crc {:#010x}, inventory said {} bytes crc {:#010x}",
            meta.name,
            bytes.len(),
            crc32(&bytes),
            meta.len,
            meta.crc
        ));
    }
    with_status(shared, |st| st.files_fetched += 1);
    Ok(bytes)
}
