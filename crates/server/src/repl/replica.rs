//! The replica's sync session: a [`SyncDriver`] owned by a replica's
//! serve loop that keeps its read-only store converging toward the
//! leader. The driver is **stepped**, not looped — the reactor arms a
//! timer, a pool worker calls [`SyncDriver::step`], and the returned
//! delay arms the next timer — so tailing the leader occupies a worker
//! slot only while a round is actually running, and no dedicated sync
//! thread exists.
//!
//! Each session connects (through the typed [`Client`]), heals (fetches
//! any file the local manifest references but the disk lacks — a crash
//! can land between a file fetch and the journal append that needed it),
//! then tails the leader one round per step:
//!
//! 1. send `ReplFetch` with the local `(offset, prefix_crc, log_id)`
//!    cursor ([`motivo_store::UrnStore::replication_cursor`]);
//! 2. if the leader flags the cursor `stale` (it gc-compacted, or this
//!    replica's log is from another lineage), re-bootstrap: install its
//!    `ReplManifest` snapshot, then heal files again — files already on
//!    disk with matching length+crc are **not** refetched, so a
//!    bootstrap after gc moves metadata, not tables;
//! 3. otherwise, for each returned journal frame: fetch the files the
//!    record will reference *first* (`BuildFinished` → the urn's sealed
//!    tables, `GraphAdded` → the cached graph), then append+apply it.
//!    Files-before-journal is the crash-safety order — if the process
//!    dies mid-fetch the journal hasn't advanced, and the re-fetch after
//!    restart skips everything already on disk.
//!
//! Connection errors tear the session down; the next step reconnects
//! after a delay from [`super::backoff::Backoff`]. A `Promote` (or
//! server shutdown) simply stops the stepping and the serve loop calls
//! [`SyncDriver::finish`].

use crate::client::Client;
use crate::proto::ReplTarget;
use crate::repl::backoff::Backoff;
use crate::repl::ReplShared;
use motivo_core::checksum::crc32;
use motivo_store::{BuildStatus, FileMeta, ManifestRecord, StoreError, UrnId, UrnStore};
use serde_json::{json, Value};
use std::time::Duration;

/// How a replica server reaches its leader.
pub struct SyncOptions {
    /// The leader's `host:port`.
    pub leader: String,
    /// This replica's name in the leader's registry (its own serve
    /// address, so `ReplStatus` on the leader reads like a topology map).
    pub name: String,
    /// Delay between fetches once caught up.
    pub poll: Duration,
}

/// The sync session's self-reported state, served by `ReplStatus` on the
/// replica.
#[derive(Clone, Debug, Default)]
pub struct SyncStatus {
    /// A session to the leader is currently up.
    pub connected: bool,
    /// The last fetch found nothing left to pull.
    pub caught_up: bool,
    /// Local durable journal offset after the last apply.
    pub offset: u64,
    /// The leader's journal length at the last fetch.
    pub leader_len: u64,
    /// Snapshot installs (1 for a clean start; +1 per gc re-bootstrap).
    pub bootstraps: u64,
    /// `ReplFetch` round-trips made.
    pub fetches: u64,
    /// Files actually downloaded (heals that found everything present
    /// don't move this — the no-refetch invariant, observable here).
    pub files_fetched: u64,
    /// Journal records applied locally.
    pub records_applied: u64,
    /// The most recent session-ending error, kept after reconnect until
    /// a session succeeds.
    pub last_error: Option<String>,
}

/// Serializes the status for `ReplStatus`.
pub fn sync_status_json(s: &SyncStatus) -> Value {
    json!({
        "connected": s.connected,
        "caught_up": s.caught_up,
        "offset": s.offset,
        "leader_len": s.leader_len,
        "bootstraps": s.bootstraps,
        "fetches": s.fetches,
        "files_fetched": s.files_fetched,
        "records_applied": s.records_applied,
        "last_error": s.last_error,
    })
}

fn estore(e: StoreError) -> String {
    format!("store: {e}")
}

fn with_status(shared: &ReplShared, f: impl FnOnce(&mut SyncStatus)) {
    let mut st = shared.sync.lock().expect("sync status poisoned");
    f(&mut st);
}

/// The replica sync state machine: one leader session plus reconnect
/// backoff, advanced one fetch/apply round at a time by the serve loop's
/// timer jobs. Every failure is recorded in [`SyncStatus::last_error`]
/// and turns into a delayed retry, never a crash.
pub struct SyncDriver<'s> {
    store: &'s UrnStore,
    shared: &'s ReplShared,
    opts: SyncOptions,
    client: Option<Client>,
    backoff: Backoff,
}

impl<'s> SyncDriver<'s> {
    pub fn new(store: &'s UrnStore, shared: &'s ReplShared, opts: SyncOptions) -> SyncDriver<'s> {
        SyncDriver {
            store,
            shared,
            opts,
            client: None,
            backoff: Backoff::new(Duration::from_millis(100), Duration::from_secs(5)),
        }
    }

    /// Runs one round — connect + heal if no session is up, then one
    /// fetch/apply — and returns how long to wait before the next step:
    /// zero while catching up, the configured poll interval once caught
    /// up, the backoff delay after a failure.
    pub fn step(&mut self) -> Duration {
        match self.try_step() {
            Ok(caught_up) => {
                self.backoff.reset();
                if caught_up {
                    self.opts.poll
                } else {
                    Duration::ZERO
                }
            }
            Err(e) => {
                // Tear the session down; the next step reconnects and
                // heals from scratch.
                self.client = None;
                with_status(self.shared, |st| {
                    st.connected = false;
                    st.caught_up = false;
                    st.last_error = Some(e);
                });
                self.backoff.next_delay()
            }
        }
    }

    fn try_step(&mut self) -> Result<bool, String> {
        if self.client.is_none() {
            let mut client = Client::connect(&self.opts.leader)
                .map_err(|e| format!("connect {}: {e}", self.opts.leader))?;
            // Heal before tailing: a crash mid-bootstrap or mid-fetch may
            // have left manifest entries whose files never fully landed.
            ensure_all_files(&mut client, self.store, self.shared, &self.opts)?;
            with_status(self.shared, |st| {
                st.connected = true;
                st.last_error = None;
            });
            self.client = Some(client);
        }
        let client = self.client.as_mut().expect("connected above");
        poll_once(client, self.store, self.shared, &self.opts)
    }

    /// Ends the session (promotion or server shutdown): drops the leader
    /// connection and reports disconnected.
    pub fn finish(&mut self) {
        self.client = None;
        with_status(self.shared, |st| {
            st.connected = false;
        });
    }
}

/// One fetch/apply round; returns whether the replica is caught up.
fn poll_once(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
) -> Result<bool, String> {
    let (offset, prefix_crc) = store.replication_cursor().map_err(estore)?;
    let log_id = store.log_id().map_err(estore)?;
    let fetch = client
        .repl_fetch(opts.name.clone(), offset, prefix_crc, log_id)
        .map_err(|e| format!("ReplFetch: {e}"))?;
    with_status(shared, |st| st.fetches += 1);

    if fetch.stale {
        bootstrap(client, store, shared, opts)?;
        return Ok(false);
    }

    for bytes in &fetch.payloads {
        let rec = ManifestRecord::decode(bytes).map_err(estore)?;
        ensure_record_files(client, store, shared, opts, &rec)?;
        store
            .apply_replicated(std::slice::from_ref(bytes))
            .map_err(estore)?;
        with_status(shared, |st| st.records_applied += 1);
    }

    let new_offset = store.replication_offset();
    let caught_up = new_offset >= fetch.leader_len;
    with_status(shared, |st| {
        st.offset = new_offset;
        st.leader_len = fetch.leader_len;
        st.caught_up = caught_up;
    });
    Ok(caught_up)
}

/// Installs the leader's manifest snapshot (resetting the local journal
/// to offset 0) and heals files against the new manifest. Urn ids are
/// stable across gc, so tables already fetched survive a re-bootstrap.
fn bootstrap(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
) -> Result<(), String> {
    let snap = client
        .repl_manifest()
        .map_err(|e| format!("ReplManifest: {e}"))?;
    store.install_manifest(&snap.manifest).map_err(estore)?;
    with_status(shared, |st| {
        st.bootstraps += 1;
        st.offset = 0;
    });
    ensure_all_files(client, store, shared, opts)
}

/// Fetches every file the local manifest references but the local disk
/// lacks (or holds with the wrong length/crc). Files already present and
/// matching are skipped — asserted by the resume tests via the leader's
/// `files_served` counter.
fn ensure_all_files(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
) -> Result<(), String> {
    for g in store.graphs() {
        ensure_graph_file(client, store, shared, opts, g.fingerprint)?;
    }
    for m in store.list() {
        if m.status == BuildStatus::Built {
            ensure_urn_files(client, store, shared, opts, m.id)?;
        }
    }
    Ok(())
}

/// Fetches what one journal record is about to reference.
fn ensure_record_files(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
    rec: &ManifestRecord,
) -> Result<(), String> {
    match rec {
        ManifestRecord::GraphAdded(g) => {
            ensure_graph_file(client, store, shared, opts, g.fingerprint)
        }
        ManifestRecord::BuildFinished { id, .. } => {
            ensure_urn_files(client, store, shared, opts, *id)
        }
        _ => Ok(()),
    }
}

fn ensure_urn_files(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
    id: UrnId,
) -> Result<(), String> {
    let leader_files = client
        .repl_files(ReplTarget::Urn(id), Some(opts.name.clone()))
        .map_err(|e| format!("ReplFiles urn-{}: {e}", id.0))?;
    let local = store.urn_file_list(id).map_err(estore)?;
    for meta in leader_files {
        if local
            .iter()
            .any(|l| l.name == meta.name && l.len == meta.len && l.crc == meta.crc)
        {
            continue;
        }
        let bytes = fetch_file(client, shared, opts, ReplTarget::Urn(id), &meta)?;
        store
            .install_urn_file(id, &meta.name, &bytes)
            .map_err(estore)?;
    }
    Ok(())
}

fn ensure_graph_file(
    client: &mut Client,
    store: &UrnStore,
    shared: &ReplShared,
    opts: &SyncOptions,
    fingerprint: u64,
) -> Result<(), String> {
    let leader_files = client
        .repl_files(ReplTarget::Graph(fingerprint), Some(opts.name.clone()))
        .map_err(|e| format!("ReplFiles graph {fingerprint:016x}: {e}"))?;
    // Zero rows: the leader has no cached graph file (graphs are an
    // optimization for re-builds, not required to serve) — nothing to do.
    let Some(meta) = leader_files.into_iter().next() else {
        return Ok(());
    };
    let local = store.graph_file_meta(fingerprint).map_err(estore)?;
    if local.is_some_and(|l| l.len == meta.len && l.crc == meta.crc) {
        return Ok(());
    }
    let bytes = fetch_file(client, shared, opts, ReplTarget::Graph(fingerprint), &meta)?;
    store
        .install_graph_file(fingerprint, &bytes)
        .map_err(estore)?;
    Ok(())
}

/// Downloads one file in chunks and verifies its length and crc against
/// the inventory row before handing it back for an atomic install.
fn fetch_file(
    client: &mut Client,
    shared: &ReplShared,
    opts: &SyncOptions,
    target: ReplTarget,
    meta: &FileMeta,
) -> Result<Vec<u8>, String> {
    let mut bytes: Vec<u8> = Vec::with_capacity(meta.len as usize);
    loop {
        let chunk = client
            .repl_file(
                target,
                meta.name.clone(),
                bytes.len() as u64,
                Some(opts.name.clone()),
            )
            .map_err(|e| format!("ReplFile {}: {e}", meta.name))?;
        if chunk.data.is_empty() && (bytes.len() as u64) < chunk.total {
            return Err(format!("ReplFile {}: empty chunk before EOF", meta.name));
        }
        bytes.extend_from_slice(&chunk.data);
        if bytes.len() as u64 >= chunk.total {
            break;
        }
    }
    if bytes.len() as u64 != meta.len || crc32(&bytes) != meta.crc {
        // The leader's file changed under us (a gc, a re-build): fail the
        // session; the reconnect heal sees the new inventory.
        return Err(format!(
            "ReplFile {}: fetched {} bytes crc {:#010x}, inventory said {} bytes crc {:#010x}",
            meta.name,
            bytes.len(),
            crc32(&bytes),
            meta.len,
            meta.crc
        ));
    }
    with_status(shared, |st| st.files_fetched += 1);
    Ok(bytes)
}
