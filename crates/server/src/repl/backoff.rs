//! Deterministic exponential backoff for the replica's reconnect loop.
//! No jitter: a replica fleet is small (single digits), the leader is
//! one process, and deterministic delays keep the fault-injection tests
//! reproducible. The sequence is `base, 2·base, 4·base, … cap` and
//! resets to `base` after any successful connection.

use std::time::Duration;

/// An exponential backoff schedule.
pub struct Backoff {
    base: Duration,
    cap: Duration,
    next: Duration,
}

impl Backoff {
    /// A schedule starting at `base` and doubling up to `cap`.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff {
            base,
            cap,
            next: base,
        }
    }

    /// The delay to sleep before the next attempt; doubles the one after.
    pub fn next_delay(&mut self) -> Duration {
        let d = self.next;
        self.next = (self.next * 2).min(self.cap);
        d
    }

    /// Back to `base` (call on success).
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_to_the_cap_and_resets() {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(5));
        let delays: Vec<u64> = (0..8).map(|_| b.next_delay().as_millis() as u64).collect();
        assert_eq!(delays, [100, 200, 400, 800, 1600, 3200, 5000, 5000]);
        b.reset();
        assert_eq!(b.next_delay().as_millis(), 100);
        assert_eq!(b.next_delay().as_millis(), 200);
    }
}
