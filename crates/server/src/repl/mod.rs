//! Leader/replica replication over the wire protocol (DESIGN.md §8).
//!
//! Replication is **pull-based** and rides the same length-prefixed JSON
//! frames as every other request, so a replica needs nothing but a
//! [`crate::Client`] and the leader needs no extra listener:
//!
//! - the **leader** is an ordinary server whose engine additionally
//!   answers `ReplFetch` (journal frames from an offset), `ReplManifest`
//!   (snapshot bytes), `ReplFiles`/`ReplFile` (sealed urn and graph
//!   files), and `ReplStatus`; a [`registry::ReplRegistry`] tracks each
//!   replica's offset, lag, and served-file counts;
//! - a **replica** is a server whose store was opened with
//!   [`motivo_store::UrnStore::open_replica`] (mutations refused with
//!   `ReadOnly`) plus a [`replica::SyncDriver`] — stepped as timer jobs
//!   on the serve loop's worker pool, no dedicated thread — that
//!   bootstraps from the leader's snapshot, fetches missing files, and
//!   tails the journal. Because query answering is deterministic
//!   (DESIGN.md §6.4),
//!   a caught-up replica returns **byte-identical** responses to the
//!   leader — replicas scale reads without weakening any guarantee.
//!
//! The replica's journal is maintained as a byte-exact prefix of the
//! leader's; its resume offset after a crash is simply whatever
//! `Journal::open`'s torn-tail truncation leaves behind, the same
//! recovery path a standalone store uses. A `Promote` request flips the
//! read-only gate, sweeps builds the dead leader left unfinished, and
//! stops the sync session — after which the server is a leader like any
//! other.

pub mod backoff;
pub mod protocol;
pub mod registry;
pub mod replica;

use motivo_obs::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Replication state shared between a serve loop's engine, its reactor,
/// and (on a replica) its sync driver.
pub struct ReplShared {
    /// True while this server is a read-only replica; cleared by
    /// `Promote`. Connection readers consult it to refuse `Shutdown`
    /// inline, the engine to refuse `Build`.
    replica: AtomicBool,
    /// The leader address a replica was started against (`None` on a
    /// server born a leader).
    pub leader: Option<String>,
    /// Per-replica fetch accounting (meaningful on a leader; empty on a
    /// replica unless something fetches from it — chaining is legal).
    pub registry: registry::ReplRegistry,
    /// The sync driver's self-reported status, served by `ReplStatus`.
    pub sync: Mutex<replica::SyncStatus>,
    /// Tells the sync driver to stop (promotion or server shutdown).
    stop_sync: AtomicBool,
}

impl ReplShared {
    /// State for a server born a leader.
    pub fn leader(obs: Arc<Registry>) -> ReplShared {
        ReplShared::with_role(None, obs)
    }

    /// State for a server started as a replica of `leader`.
    pub fn replica(leader: String, obs: Arc<Registry>) -> ReplShared {
        ReplShared::with_role(Some(leader), obs)
    }

    fn with_role(leader: Option<String>, obs: Arc<Registry>) -> ReplShared {
        ReplShared {
            replica: AtomicBool::new(leader.is_some()),
            leader,
            registry: registry::ReplRegistry::new(obs),
            sync: Mutex::new(replica::SyncStatus::default()),
            stop_sync: AtomicBool::new(false),
        }
    }

    /// Is this server currently serving as a read-only replica?
    pub fn is_replica(&self) -> bool {
        self.replica.load(Ordering::SeqCst)
    }

    /// Marks the server a leader (the `Promote` handler's flag flip).
    pub fn set_leader(&self) {
        self.replica.store(false, Ordering::SeqCst);
    }

    /// Asks the sync driver to stop at its next step.
    pub fn stop_sync(&self) {
        self.stop_sync.store(true, Ordering::SeqCst);
    }

    /// Has the sync driver been asked to stop?
    pub fn sync_stopped(&self) -> bool {
        self.stop_sync.load(Ordering::SeqCst)
    }
}
