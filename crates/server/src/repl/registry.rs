//! The leader's view of its replicas. Nothing registers a replica
//! explicitly: the first `ReplFetch` naming it creates its row, every
//! later one refreshes it. The registry is bookkeeping, not membership —
//! a replica that stops fetching simply goes stale (its `last_seen` age
//! keeps growing in `ReplStatus`), and a promoted ex-replica fetching
//! from a new leader shows up there under its own name.
//!
//! Each replica's byte lag (leader journal length minus the replica's
//! acknowledged offset) is mirrored into a `repl.lag.<name>` gauge in
//! the store's [`motivo_obs::Registry`], so lag lands in the same
//! `Metrics` response and snapshot files as every other serving metric.

use motivo_obs::Registry;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One replica's accounting row.
#[derive(Clone, Debug)]
pub struct ReplicaInfo {
    /// Journal offset acknowledged by its latest fetch.
    pub offset: u64,
    /// Leader-journal bytes it had not yet fetched at that point.
    pub lag: u64,
    /// `ReplFetch` requests served to it.
    pub fetches: u64,
    /// `ReplFile` chunks served to it — the counter the no-refetch test
    /// watches: a replica resuming from a durable offset must not move it.
    pub files_served: u64,
    /// When it last fetched anything.
    pub last_seen: Instant,
}

/// All replicas a leader has heard from, by name.
pub struct ReplRegistry {
    inner: Mutex<BTreeMap<String, ReplicaInfo>>,
    obs: Arc<Registry>,
}

impl ReplRegistry {
    /// An empty registry publishing lag gauges into `obs`.
    pub fn new(obs: Arc<Registry>) -> ReplRegistry {
        ReplRegistry {
            inner: Mutex::new(BTreeMap::new()),
            obs,
        }
    }

    fn row<'a>(map: &'a mut BTreeMap<String, ReplicaInfo>, name: &str) -> &'a mut ReplicaInfo {
        map.entry(name.to_string()).or_insert_with(|| ReplicaInfo {
            offset: 0,
            lag: 0,
            fetches: 0,
            files_served: 0,
            last_seen: Instant::now(),
        })
    }

    /// Records a `ReplFetch` from `name` at `offset` against a journal
    /// currently `leader_len` bytes long.
    pub fn on_fetch(&self, name: &str, offset: u64, leader_len: u64) {
        let lag = leader_len.saturating_sub(offset);
        let mut map = self.inner.lock().expect("repl registry poisoned");
        let row = Self::row(&mut map, name);
        row.offset = offset;
        row.lag = lag;
        row.fetches += 1;
        row.last_seen = Instant::now();
        drop(map);
        self.obs.gauge(&format!("repl.lag.{name}")).set(lag);
    }

    /// Records a `ReplFile` chunk served to `name` (when the request
    /// carried a name — anonymous fetches are served but unattributed).
    pub fn on_file(&self, name: Option<&str>) {
        let Some(name) = name else { return };
        let mut map = self.inner.lock().expect("repl registry poisoned");
        let row = Self::row(&mut map, name);
        row.files_served += 1;
        row.last_seen = Instant::now();
    }

    /// The `ReplStatus` rows: one object per replica, ascending by name.
    pub fn snapshot_json(&self) -> Vec<Value> {
        let map = self.inner.lock().expect("repl registry poisoned");
        map.iter()
            .map(|(name, r)| {
                json!({
                    "name": name,
                    "offset": r.offset,
                    "lag": r.lag,
                    "fetches": r.fetches,
                    "files_served": r.files_served,
                    "last_seen_ms": r.last_seen.elapsed().as_millis() as u64,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetches_create_rows_and_publish_lag() {
        let obs = Arc::new(Registry::new());
        let reg = ReplRegistry::new(obs.clone());
        reg.on_fetch("r1", 0, 96);
        reg.on_fetch("r1", 96, 96);
        reg.on_fetch("r2", 32, 96);
        reg.on_file(Some("r2"));
        reg.on_file(Some("r2"));
        reg.on_file(None); // anonymous: served, not attributed

        let rows = reg.snapshot_json();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("r1"));
        assert_eq!(rows[0].get("offset").unwrap().as_u64(), Some(96));
        assert_eq!(rows[0].get("lag").unwrap().as_u64(), Some(0));
        assert_eq!(rows[0].get("fetches").unwrap().as_u64(), Some(2));
        assert_eq!(rows[1].get("lag").unwrap().as_u64(), Some(64));
        assert_eq!(rows[1].get("files_served").unwrap().as_u64(), Some(2));

        assert_eq!(obs.gauge("repl.lag.r1").get(), 0);
        assert_eq!(obs.gauge("repl.lag.r2").get(), 64);
    }
}
