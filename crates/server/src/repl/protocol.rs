//! Byte payloads inside JSON frames: the replication requests carry
//! journal frames, manifest snapshots, and file chunks as lowercase hex
//! strings. Hex doubles the bytes on the wire but keeps every frame
//! valid UTF-8 JSON — the protocol stays greppable, and no frame-format
//! fork is needed for the one request family that moves binary data.
//! Chunk sizes are bounded by [`motivo_store::FILE_CHUNK_BYTES`] (1 MiB
//! raw, 2 MiB encoded), comfortably under the 8 MiB frame cap.

use serde_json::Value;

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Decodes a hex string; rejects odd lengths and non-hex characters
/// (a replica must never apply a payload it couldn't decode exactly).
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    let raw = s.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err(format!("hex string has odd length {}", raw.len()));
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        match (nibble(pair[0]), nibble(pair[1])) {
            (Some(hi), Some(lo)) => out.push(hi << 4 | lo),
            _ => {
                return Err(format!(
                    "invalid hex pair `{}{}`",
                    pair[0] as char, pair[1] as char
                ))
            }
        }
    }
    Ok(out)
}

/// Pulls a required `u64` out of a leader response payload.
pub fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|f| f.as_u64())
        .ok_or_else(|| format!("leader response missing `{key}`"))
}

/// Pulls a required hex-encoded byte field out of a leader response.
pub fn field_bytes(v: &Value, key: &str) -> Result<Vec<u8>, String> {
    let f = v
        .get(key)
        .ok_or_else(|| format!("leader response missing `{key}`"))?;
    let s = f
        .as_str()
        .ok_or_else(|| format!("leader response missing `{key}`"))?;
    hex_decode(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn hex_roundtrips() {
        for bytes in [&b""[..], &b"\x00"[..], &b"\xff\x00\xab"[..], &b"motivo"[..]] {
            let enc = hex_encode(bytes);
            assert_eq!(hex_decode(&enc).unwrap(), bytes, "{enc}");
        }
        assert_eq!(hex_encode(b"\x01\xfe"), "01fe");
        // Uppercase decodes too (be liberal in what you accept)…
        assert_eq!(hex_decode("01FE").unwrap(), b"\x01\xfe");
    }

    #[test]
    fn malformed_hex_is_rejected() {
        assert!(hex_decode("abc").unwrap_err().contains("odd length"));
        assert!(hex_decode("zz").unwrap_err().contains("invalid hex"));
        assert!(hex_decode("0 ").unwrap_err().contains("invalid hex"));
    }

    #[test]
    fn response_field_extraction() {
        let v = json!({"offset": 42, "data": "00ff"});
        assert_eq!(field_u64(&v, "offset").unwrap(), 42);
        assert_eq!(field_bytes(&v, "data").unwrap(), vec![0x00, 0xff]);
        assert!(field_u64(&v, "missing").unwrap_err().contains("missing"));
        assert!(field_bytes(&v, "offset").unwrap_err().contains("missing"));
    }
}
