//! Readiness-driven I/O primitives for the serve loop (DESIGN.md §6.2):
//! a poller over raw fds, a self-wakeup pipe, and the per-connection
//! frame/write state machines.
//!
//! Everything here is std-only. The kernel interfaces are reached through
//! thin `extern "C"` shims against the libc that std already links —
//! the same vendored-stand-in discipline the workspace uses for external
//! crates, applied to syscalls. On Linux the poller is **epoll**
//! (level-triggered: a token is re-reported until its fd is drained, so a
//! missed event is impossible by construction); on other unixes it falls
//! back to `poll(2)`. Windows is not supported.
//!
//! The split of responsibilities with [`crate::server`]:
//!
//! - [`Poller`] says *which fds are ready* — it never owns them;
//! - [`wake_pair`] lets worker threads (and [`crate::Server::shutdown`])
//!   interrupt a blocked [`Poller::wait`] from outside the reactor;
//! - [`FrameReader`] turns an arbitrary byte-arrival schedule into whole
//!   wire frames (a frame may trickle in one byte per readiness event);
//! - [`WriteBuf`] turns whole response frames into whatever the socket
//!   will currently accept, reporting whether interest in writability
//!   must be (re-)registered.

use std::io::{self, Read, Write};
use std::os::raw::c_int;
use std::time::Duration;

#[cfg(unix)]
use std::os::fd::RawFd;

use crate::proto;

/// Readiness interest: what the reactor wants to hear about for one fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// No readiness interest; errors and hangups are still reported.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report. `readable`/`writable` include error and hangup
/// conditions (folded into `readable` so the owner's next read observes
/// the failure and handles it on its normal path).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

// ---------------------------------------------------------------------------
// Syscall shims — Linux epoll.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    /// The kernel's `struct epoll_event`. Packed on x86 (the kernel ABI
    /// there has no padding between `events` and `data`); naturally
    /// aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }
}

// ---------------------------------------------------------------------------
// Syscall shims — portable poll(2) fallback for non-Linux unixes.
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::*;
    use std::os::raw::c_short;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    pub const F_SETFL: c_int = 4;
    pub const F_GETFL: c_int = 3;
    pub const O_NONBLOCK: c_int = 0x0004; // BSD/macOS value

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: usize, timeout_ms: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Milliseconds for the kernel wait call: `None` blocks forever (-1);
/// sub-millisecond waits round up so a due timer is never spun on.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => d
            .as_millis()
            .try_into()
            .map(|ms: u64| ms.min(c_int::MAX as u64) as c_int)
            .unwrap_or(c_int::MAX)
            .max(if d.is_zero() { 0 } else { 1 }),
    }
}

// ---------------------------------------------------------------------------
// Poller — epoll backend.
// ---------------------------------------------------------------------------

/// Readiness multiplexer over raw fds. Registration maps an fd to a
/// caller-chosen `u64` token; [`Poller::wait`] reports ready tokens.
/// The poller never owns the fds it watches.
#[cfg(target_os = "linux")]
pub struct Poller {
    epfd: c_int,
}

#[cfg(target_os = "linux")]
impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut events = 0u32;
        if interest.readable {
            events |= sys::EPOLLIN;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Starts watching `fd` under `token`.
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of a watched fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stops watching `fd`. (Closing an fd deregisters it implicitly, but
    /// only once every duplicate is closed — the reactor always removes
    /// explicitly so a stray `try_clone` can never resurrect a token.)
    pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// Blocks until at least one watched fd is ready or `timeout`
    /// elapses, appending readiness reports to `events` (cleared first).
    /// An interrupted wait (`EINTR`) returns empty rather than erroring.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        const CAP: usize = 512;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        let n = unsafe {
            sys::epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as c_int, timeout_ms(timeout))
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            return if e.kind() == io::ErrorKind::Interrupted {
                Ok(())
            } else {
                Err(e)
            };
        }
        for ev in buf.iter().take(n as usize) {
            let bits = ev.events;
            let failed = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            events.push(Event {
                token: ev.data,
                readable: bits & sys::EPOLLIN != 0 || failed,
                writable: bits & sys::EPOLLOUT != 0 || failed,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

// ---------------------------------------------------------------------------
// Poller — poll(2) backend (non-Linux unix).
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
pub struct Poller {
    watched: Vec<(RawFd, u64, Interest)>,
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            watched: Vec::new(),
        })
    }

    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.watched.iter().any(|&(f, _, _)| f == fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd watched"));
        }
        self.watched.push((fd, token, interest));
        Ok(())
    }

    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        for w in &mut self.watched {
            if w.0 == fd {
                *w = (fd, token, interest);
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not watched"))
    }

    pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.watched.len();
        self.watched.retain(|&(f, _, _)| f != fd);
        if self.watched.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not watched"));
        }
        Ok(())
    }

    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let mut fds: Vec<sys::PollFd> = self
            .watched
            .iter()
            .map(|&(fd, _, interest)| sys::PollFd {
                fd,
                events: if interest.readable { sys::POLLIN } else { 0 }
                    | if interest.writable { sys::POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) };
        if n < 0 {
            let e = io::Error::last_os_error();
            return if e.kind() == io::ErrorKind::Interrupted {
                Ok(())
            } else {
                Err(e)
            };
        }
        for (pf, &(_, token, _)) in fds.iter().zip(&self.watched) {
            if pf.revents == 0 {
                continue;
            }
            let failed = pf.revents & (sys::POLLERR | sys::POLLHUP) != 0;
            events.push(Event {
                token,
                readable: pf.revents & sys::POLLIN != 0 || failed,
                writable: pf.revents & sys::POLLOUT != 0 || failed,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Wakeup pipe.
// ---------------------------------------------------------------------------

/// Creates a non-blocking self-wakeup pipe: the [`Waker`] end is cheap,
/// clonable, and safe to use from any thread; the [`WakeReader`] end is
/// registered in the reactor's poller and drained on every wakeup.
pub fn wake_pair() -> io::Result<(Waker, WakeReader)> {
    let mut fds = [0 as c_int; 2];
    #[cfg(target_os = "linux")]
    cvt(unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) })?;
    #[cfg(all(unix, not(target_os = "linux")))]
    {
        cvt(unsafe { sys::pipe(fds.as_mut_ptr()) })?;
        for fd in fds {
            let flags = cvt(unsafe { sys::fcntl(fd, sys::F_GETFL, 0) })?;
            cvt(unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) })?;
        }
    }
    Ok((
        Waker {
            fd: std::sync::Arc::new(PipeFd(fds[1])),
        },
        WakeReader(PipeFd(fds[0])),
    ))
}

/// An owned pipe fd, closed on drop.
struct PipeFd(c_int);

impl Drop for PipeFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

// The fd is only touched through `read`/`write`, both thread-safe.
unsafe impl Send for PipeFd {}
unsafe impl Sync for PipeFd {}

/// The writable end of a wakeup pipe.
#[derive(Clone)]
pub struct Waker {
    fd: std::sync::Arc<PipeFd>,
}

impl Waker {
    /// Interrupts a blocked [`Poller::wait`]. Never blocks: a full pipe
    /// means a wakeup is already pending, which is all a wakeup is.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { sys::write(self.fd.0, &byte, 1) };
    }
}

/// The readable end of a wakeup pipe.
pub struct WakeReader(PipeFd);

impl WakeReader {
    /// The fd to register in the poller (read interest).
    pub fn fd(&self) -> RawFd {
        (self.0).0
    }

    /// Consumes every pending wakeup byte so level-triggered polling
    /// stops reporting the pipe until the next [`Waker::wake`].
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read((self.0).0, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 || (n as usize) < buf.len() {
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Frame accumulation (the read half of a connection's state machine).
// ---------------------------------------------------------------------------

/// Incremental parser of length-prefixed wire frames: bytes go in as they
/// arrive, whole frames come out. One frame may span many readiness
/// events; one event may deliver many frames.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame payload, if one has fully arrived.
    /// An announced length beyond [`proto::MAX_FRAME`] is a protocol
    /// error — the caller drops the connection, exactly as the blocking
    /// reader did.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, String> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > proto::MAX_FRAME {
            return Err(format!(
                "frame of {len} bytes exceeds the {}-byte cap",
                proto::MAX_FRAME
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------------
// Buffered writes (the write half of a connection's state machine).
// ---------------------------------------------------------------------------

/// Pending response bytes for one connection. Frames are appended whole;
/// [`WriteBuf::flush`] pushes whatever the socket will take right now.
/// A non-empty buffer after a flush is the signal to register write
/// interest and wait for the next writability event — backpressure
/// without a blocked thread.
#[derive(Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queues one wire frame (header + payload).
    pub fn push_frame(&mut self, payload: &[u8]) {
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes still waiting to go out.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Writes as much as the socket will accept. `Ok(true)` means the
    /// buffer drained; `Ok(false)` means the socket would block and
    /// write interest should be (re-)registered. Errors are fatal to the
    /// connection.
    pub fn flush(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }

    /// Reclaims consumed prefix space once it dominates the buffer, so a
    /// long-lived connection's buffer doesn't grow monotonically.
    fn compact(&mut self) {
        if self.pos > (64 << 10) && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Reads a non-blocking stream until it would block, feeding `frames`.
/// Returns `Ok(true)` if the peer cleanly closed its write side (EOF).
/// Errors are fatal to the connection.
pub fn drain_readable(
    stream: &mut impl Read,
    scratch: &mut [u8],
    frames: &mut FrameReader,
) -> io::Result<bool> {
    loop {
        match stream.read(scratch) {
            Ok(0) => return Ok(true),
            Ok(n) => frames.extend(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// Frames split at every possible byte boundary still come out whole
    /// and in order — the partial-frame half of the state machine.
    #[test]
    fn frame_reader_handles_partial_arrivals() {
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, b"{\"type\":\"Ping\"}").unwrap();
        proto::write_frame(&mut wire, b"").unwrap();
        proto::write_frame(&mut wire, &vec![b'x'; 5000]).unwrap();

        for chunk in [1usize, 2, 3, 7, 4096] {
            let mut fr = FrameReader::new();
            let mut out = Vec::new();
            for piece in wire.chunks(chunk) {
                fr.extend(piece);
                while let Some(frame) = fr.next_frame().unwrap() {
                    out.push(frame);
                }
            }
            assert_eq!(out.len(), 3, "chunk size {chunk}");
            assert_eq!(out[0], b"{\"type\":\"Ping\"}");
            assert_eq!(out[1], b"");
            assert_eq!(out[2], vec![b'x'; 5000]);
            assert_eq!(fr.buffered(), 0);
        }
    }

    #[test]
    fn frame_reader_rejects_oversized_announcements() {
        let mut fr = FrameReader::new();
        fr.extend(&(proto::MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(fr.next_frame().unwrap_err().contains("cap"));
    }

    /// A full kernel send buffer turns `flush` into `Ok(false)` (register
    /// write interest) instead of a blocked thread; draining the peer
    /// lets the flush finish and the bytes arrive intact.
    #[test]
    fn write_buf_backpressures_and_resumes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();

        let payload = vec![0xabu8; 1 << 20];
        let mut wb = WriteBuf::new();
        let mut queued = 0usize;
        // Queue frames until a flush reports backpressure.
        let drained = loop {
            wb.push_frame(&payload);
            queued += 1;
            match wb.flush(&mut tx).unwrap() {
                true if queued < 64 => continue,
                done => break done,
            }
        };
        assert!(!drained, "1 MiB frames never filled the socket buffer");
        assert!(wb.pending() > 0);

        // Drain the peer until the writer can finish.
        let mut got = 0usize;
        let mut buf = vec![0u8; 1 << 20];
        let total = queued * (payload.len() + 4);
        rx.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        while got < total {
            got += rx.read(&mut buf).unwrap();
            if wb.flush(&mut tx).unwrap() {
                // Drained: nothing left but what the peer hasn't read yet.
                assert!(wb.is_empty());
            }
        }
        assert!(wb.is_empty(), "{} bytes still pending", wb.pending());
        assert_eq!(got, total);
    }

    /// A wakeup from another thread interrupts a blocked wait, and
    /// draining stops the level-triggered re-report.
    #[test]
    fn wakeup_interrupts_a_blocked_wait() {
        let (waker, reader) = wake_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(reader.fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();

        // No wakeup pending: times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
            waker.wake(); // coalesces; still one readable pipe
            waker
        });
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        reader.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained pipe still readable");
        drop(t.join().unwrap());
    }

    /// Poller readiness tracks socket state: a listener becomes readable
    /// on a pending connection; write interest re-registration surfaces
    /// writability exactly while wanted.
    #[test]
    fn poller_reports_socket_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .add(listener.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        let mut events = Vec::new();

        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let (accepted, _) = listener.accept().unwrap();

        // An idle healthy socket with write interest is instantly writable…
        poller
            .add(accepted.as_raw_fd(), 2, Interest::BOTH)
            .unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));
        // …and dropping the interest stops the reports.
        poller
            .modify(accepted.as_raw_fd(), 2, Interest::NONE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 2));

        poller.remove(accepted.as_raw_fd()).unwrap();
        drop(client);
    }
}
