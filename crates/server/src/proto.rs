//! The wire protocol: length-prefixed JSON frames, request parsing, and
//! response payload serialization (documented in DESIGN.md §6).
//!
//! Every frame is a `u32le` byte length followed by that many bytes of
//! UTF-8 JSON. Requests are objects with a `"type"` discriminant and an
//! optional `"id"` the server echoes back verbatim, so a pipelining client
//! can match out-of-order responses to requests. Responses carry either
//! `"ok"` (the payload) or `"error"` (`{"kind", "message"}`).
//!
//! **Determinism:** payloads never embed wall-clock or other
//! run-dependent values, and every collection is serialized in a canonical
//! order (classes ascending by registry index, tallies ascending by
//! canonical code). A request carrying a seed therefore produces
//! byte-identical payload text to the equivalent in-process
//! [`motivo_store::StoreQuery`] call, at any worker-pool size.

use motivo_core::{AgsResult, Estimates, RecordCodec};
use motivo_graphlet::{name, Graphlet, GraphletRegistry};
use motivo_store::{BuildStatus, CacheStats, FileMeta, QueryStats, StoreError, UrnId, UrnMeta};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::io::{Read, Write};

/// Hard cap on one frame's payload; a peer announcing more is corrupt (or
/// hostile) and gets its connection dropped instead of an allocation.
pub const MAX_FRAME: usize = 8 << 20;

/// Hard cap on sub-requests per `Batch` frame: bounds the memory one
/// worker slot can be asked to hold, like [`MAX_FRAME`] bounds one frame.
pub const MAX_BATCH: usize = 1024;

/// The wire-protocol version this build speaks, negotiated by `Hello`.
pub const PROTO_VERSION: u64 = 1;

/// Per-connection cap on requests in flight through the worker pool.
/// A pipelining client that exceeds it gets `Busy` for the overflow —
/// the same backpressure contract as a full queue, applied per
/// connection so one firehose cannot monopolize the shared queue.
/// Advertised in the `Hello` response as `max_pipeline`.
pub const MAX_PIPELINE: usize = 128;

/// Capability strings advertised in the `Hello` response.
pub const FEATURES: [&str; 4] = ["batch", "pipelining", "query_cache", "replication"];

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary (the peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame and flushes it. Header and payload go
/// out as **one** write: on an unbuffered socket, two small writes make
/// two packets, and Nagle's algorithm + delayed ACK turn every
/// request/response round-trip into a multi-millisecond stall.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// A parsed request. Field defaults (`samples` 100 000, `seed` 0,
/// `threads` 0 = all cores) follow the CLI's.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered inline by the reactor, so it works even
    /// when the worker queue is saturated.
    Ping,
    /// Optional versioned handshake: the client announces its protocol
    /// version and the feature strings it understands; the server answers
    /// with its version, supported request kinds, features, and the
    /// reactor's pipelining limits (see [`hello_payload`]). Clients that
    /// skip `Hello` keep working — the protocol is unchanged for them.
    Hello {
        proto_version: u64,
        features: Vec<String>,
    },
    /// Every urn the store's manifest knows.
    ListUrns,
    /// Naive (uniform treelet) estimation against a built urn.
    NaiveEstimates {
        urn: UrnId,
        samples: u64,
        seed: u64,
        threads: usize,
    },
    /// Adaptive graphlet sampling against a built urn.
    Ags {
        urn: UrnId,
        max_samples: u64,
        c_bar: Option<u64>,
        epoch: Option<u64>,
        idle_limit: Option<u64>,
        seed: u64,
        threads: usize,
    },
    /// Raw graphlet occurrences: a canonical-code tally of sampled copies.
    Sample {
        urn: UrnId,
        samples: u64,
        seed: u64,
        threads: usize,
    },
    /// Serving counters, per urn or (with no `"urn"`) aggregated.
    Stats { urn: Option<UrnId> },
    /// The server's metrics registry: per-request-kind counters and
    /// latency quantiles, plus a Prometheus-style text rendering of every
    /// counter/gauge/histogram in the store's [`motivo_obs::Registry`].
    Metrics,
    /// Enqueue a build on the store's background worker. `graph` is a path
    /// readable by the *server*. With `"wait": true` the response is held
    /// until the build finishes (this occupies one pool worker).
    Build {
        graph: String,
        k: u32,
        seed: u64,
        lambda: Option<f64>,
        codec: RecordCodec,
        wait: bool,
    },
    /// A list of sub-requests carried through one frame and one
    /// worker-pool slot. Sub-documents are kept raw and parsed when the
    /// batch executes, so one malformed sub-request becomes a
    /// per-sub-request error envelope instead of failing the whole batch.
    /// Responses come back in request order.
    Batch(Vec<Value>),
    /// Graceful shutdown: stop accepting, drain in-flight requests, flush
    /// store stats, exit. Answered inline like `Ping`. Refused with
    /// [`ErrorKind::ReadOnly`] on a replica — a replica's lifecycle belongs
    /// to its operator (or a `Promote`), not to arbitrary wire peers.
    Shutdown,
    /// Replication pull (replica → leader): journal frames from `offset`
    /// onward. `prefix_crc` is the CRC32 of the replica's own journal
    /// bytes and `log_id` the CRC32 of the manifest snapshot it
    /// bootstrapped from; the leader flags the fetch `stale` unless both
    /// prove the replica's log is a byte prefix of the same lineage.
    ReplFetch {
        replica: String,
        offset: u64,
        prefix_crc: u32,
        log_id: u32,
    },
    /// Replication bootstrap: the leader's raw `MANIFEST` snapshot bytes.
    ReplManifest,
    /// Replication file inventory (name/len/crc per file) for one urn
    /// directory or one cached graph, so a replica fetches only what it is
    /// missing. `replica` (optional) attributes the traffic in `ReplStatus`.
    ReplFiles {
        target: ReplTarget,
        replica: Option<String>,
    },
    /// One chunk of a sealed urn or graph file, hex-encoded.
    ReplFile {
        target: ReplTarget,
        name: String,
        offset: u64,
        replica: Option<String>,
    },
    /// Replication health: role, journal offset, log id, and (on a
    /// leader) per-replica lag; (on a replica) sync-session status.
    ReplStatus,
    /// Turn a replica into a leader: clear the read-only gate, sweep
    /// builds the dead leader left unfinished, stop the sync session.
    /// `BadRequest` on a server that is already a leader.
    Promote,
}

/// What a [`Request::ReplFiles`]/[`Request::ReplFile`] request addresses:
/// one urn's directory of sealed table files, or one graph cached by
/// fingerprint in the store's `graphs/` directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplTarget {
    Urn(UrnId),
    Graph(u64),
}

fn get_u64(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    Ok(get_opt_u64(v, key)?.unwrap_or(default))
}

fn get_opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn get_urn(v: &Value) -> Result<UrnId, String> {
    let f = v.get("urn").ok_or("`urn` is required")?;
    if let Some(n) = f.as_u64() {
        return Ok(UrnId(n));
    }
    // Accept the printed form too ("urn-3"), as the CLI does.
    f.as_str()
        .and_then(|s| s.strip_prefix("urn-").unwrap_or(s).parse().ok())
        .map(UrnId)
        .ok_or_else(|| "`urn` must be an id number or \"urn-N\"".to_string())
}

fn get_u32(v: &Value, key: &str) -> Result<u32, String> {
    get_u64(v, key, 0)?
        .try_into()
        .map_err(|_| format!("`{key}` must fit in 32 bits"))
}

fn get_repl_target(v: &Value) -> Result<ReplTarget, String> {
    match (v.get("urn"), v.get("graph")) {
        (Some(_), None) => Ok(ReplTarget::Urn(get_urn(v)?)),
        (None, Some(g)) => g
            .as_str()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .map(ReplTarget::Graph)
            .ok_or_else(|| "`graph` must be a 16-hex-digit fingerprint".to_string()),
        _ => Err("exactly one of `urn` or `graph` is required".to_string()),
    }
}

fn get_opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

impl Request {
    /// Parses a request document (the caller extracts the echoed `"id"`
    /// itself, so parse failures can still carry it).
    pub fn parse(v: &Value) -> Result<Request, String> {
        let ty = v
            .get("type")
            .and_then(|t| t.as_str().map(str::to_string))
            .ok_or("request must carry a string `type`")?;
        let seed = get_u64(v, "seed", 0)?;
        let threads = get_u64(v, "threads", 0)? as usize;
        let req = match ty.as_str() {
            "Ping" => Request::Ping,
            "Hello" => Request::Hello {
                proto_version: get_u64(v, "proto_version", PROTO_VERSION)?,
                features: match v.get("features") {
                    None => Vec::new(),
                    Some(f) => f
                        .as_array()
                        .ok_or("`features` must be an array of strings")?
                        .iter()
                        .map(|s| {
                            s.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "`features` must be an array of strings".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                },
            },
            "ListUrns" => Request::ListUrns,
            "NaiveEstimates" => Request::NaiveEstimates {
                urn: get_urn(v)?,
                samples: get_u64(v, "samples", 100_000)?,
                seed,
                threads,
            },
            "Ags" => Request::Ags {
                urn: get_urn(v)?,
                max_samples: get_u64(v, "max_samples", 100_000)?,
                c_bar: get_opt_u64(v, "c_bar")?,
                epoch: get_opt_u64(v, "epoch")?,
                idle_limit: get_opt_u64(v, "idle_limit")?,
                seed,
                threads,
            },
            "Sample" => Request::Sample {
                urn: get_urn(v)?,
                samples: get_u64(v, "samples", 100_000)?,
                seed,
                threads,
            },
            "Stats" => Request::Stats {
                urn: if v.get("urn").is_some() {
                    Some(get_urn(v)?)
                } else {
                    None
                },
            },
            "Metrics" => Request::Metrics,
            "Build" => Request::Build {
                graph: v
                    .get("graph")
                    .and_then(|g| g.as_str().map(str::to_string))
                    .ok_or("`graph` (a server-side path) is required")?,
                k: get_u64(v, "k", 0).and_then(|k| {
                    if (2..=16).contains(&k) {
                        Ok(k as u32)
                    } else {
                        Err("`k` must be in [2, 16]".to_string())
                    }
                })?,
                seed,
                lambda: match v.get("lambda") {
                    None => None,
                    Some(l) => Some(l.as_f64().ok_or("`lambda` must be a number")?),
                },
                codec: match v.get("codec") {
                    None => RecordCodec::Plain,
                    Some(c) => c
                        .as_str()
                        .ok_or_else(|| "`codec` must be a string".to_string())
                        .and_then(str::parse)?,
                },
                wait: match v.get("wait") {
                    None => false,
                    Some(w) => w.as_bool().ok_or("`wait` must be a boolean")?,
                },
            },
            "Batch" => {
                let subs = v
                    .get("requests")
                    .ok_or("`requests` (an array of sub-requests) is required")?;
                let subs = subs
                    .as_array()
                    .ok_or("`requests` must be an array of request documents")?;
                if subs.len() > MAX_BATCH {
                    return Err(format!(
                        "batch of {} sub-requests exceeds the {MAX_BATCH}-request cap",
                        subs.len()
                    ));
                }
                Request::Batch(subs)
            }
            "Shutdown" => Request::Shutdown,
            "ReplFetch" => Request::ReplFetch {
                replica: v
                    .get("replica")
                    .and_then(|r| r.as_str().map(str::to_string))
                    .ok_or("`replica` (the replica's name) is required")?,
                offset: get_u64(v, "offset", 0)?,
                prefix_crc: get_u32(v, "prefix_crc")?,
                log_id: get_u32(v, "log_id")?,
            },
            "ReplManifest" => Request::ReplManifest,
            "ReplFiles" => Request::ReplFiles {
                target: get_repl_target(v)?,
                replica: get_opt_str(v, "replica")?,
            },
            "ReplFile" => Request::ReplFile {
                target: get_repl_target(v)?,
                name: v
                    .get("name")
                    .and_then(|n| n.as_str().map(str::to_string))
                    .ok_or("`name` (the file name) is required")?,
                offset: get_u64(v, "offset", 0)?,
                replica: get_opt_str(v, "replica")?,
            },
            "ReplStatus" => Request::ReplStatus,
            "Promote" => Request::Promote,
            other => return Err(format!("unknown request type `{other}`")),
        };
        Ok(req)
    }

    /// The canonical cache key of a deterministic request, or `None` for
    /// request types whose responses depend on mutable server state
    /// (`ListUrns`, `Stats`, `Build`, …). `content_id` is the urn's
    /// build-key content identity (graph fingerprint + k + seed + bias +
    /// 0-rooting + codec, [`motivo_store::BuildKey::content_id`]),
    /// binding the key to the urn's *content* so a store whose ids were
    /// ever reassigned — even to a different build of the same graph —
    /// cannot replay a stale payload.
    ///
    /// The key is the request's canonical serialization minus the echoed
    /// `id` — fixed field order, defaults materialized — so semantically
    /// identical frames (`{"seed":3,"type":"Sample",…}` vs
    /// `{"type":"Sample",…,"seed":3}`) share an entry. `threads` is
    /// deliberately **excluded**: seeded responses are byte-identical at
    /// any thread count (DESIGN.md §6.4), so requests differing only in
    /// `threads` are the same cache line — the determinism invariant
    /// working as a performance feature.
    pub fn cache_key(&self, content_id: u64) -> Option<String> {
        let fp = format!("{content_id:016x}");
        let doc = match self {
            Request::NaiveEstimates {
                urn,
                samples,
                seed,
                threads: _,
            } => json!({
                "type": "NaiveEstimates", "fp": fp, "urn": urn.0,
                "samples": samples, "seed": seed,
            }),
            Request::Ags {
                urn,
                max_samples,
                c_bar,
                epoch,
                idle_limit,
                seed,
                threads: _,
            } => json!({
                "type": "Ags", "fp": fp, "urn": urn.0,
                "max_samples": max_samples, "c_bar": c_bar, "epoch": epoch,
                "idle_limit": idle_limit, "seed": seed,
            }),
            Request::Sample {
                urn,
                samples,
                seed,
                threads: _,
            } => json!({
                "type": "Sample", "fp": fp, "urn": urn.0,
                "samples": samples, "seed": seed,
            }),
            _ => return None,
        };
        Some(serde_json::to_string(&doc).expect("key serialize"))
    }

    /// The request's kind name — the `"type"` discriminant it parsed
    /// from. This is the label the server's per-kind metrics
    /// (`server.requests.<kind>`, `server.latency.<kind>`, …) hang off,
    /// so the set of values is closed and stable.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::Hello { .. } => "Hello",
            Request::ListUrns => "ListUrns",
            Request::NaiveEstimates { .. } => "NaiveEstimates",
            Request::Ags { .. } => "Ags",
            Request::Sample { .. } => "Sample",
            Request::Stats { .. } => "Stats",
            Request::Metrics => "Metrics",
            Request::Build { .. } => "Build",
            Request::Batch(_) => "Batch",
            Request::Shutdown => "Shutdown",
            Request::ReplFetch { .. } => "ReplFetch",
            Request::ReplManifest => "ReplManifest",
            Request::ReplFiles { .. } => "ReplFiles",
            Request::ReplFile { .. } => "ReplFile",
            Request::ReplStatus => "ReplStatus",
            Request::Promote => "Promote",
        }
    }

    /// The urn a cacheable request targets ([`Request::cache_key`] needs
    /// its content id); `None` for uncacheable request types.
    pub fn cached_urn(&self) -> Option<UrnId> {
        match self {
            Request::NaiveEstimates { urn, .. }
            | Request::Ags { urn, .. }
            | Request::Sample { urn, .. } => Some(*urn),
            _ => None,
        }
    }

    /// The canonical request document — what the typed client puts on the
    /// wire. Round-trips through [`Request::parse`]: optional fields are
    /// emitted only when set, so absent-vs-defaulted survives the trip
    /// (asserted for every variant in this module's tests).
    pub fn to_value(&self) -> Value {
        let target = |doc: &mut Value, target: &ReplTarget| match target {
            ReplTarget::Urn(id) => doc.set("urn", json!(id.0)),
            ReplTarget::Graph(fp) => doc.set("graph", json!(format!("{fp:016x}"))),
        };
        let opt = |doc: &mut Value, key: &str, v: Option<Value>| {
            if let Some(v) = v {
                doc.set(key, v);
            }
        };
        match self {
            Request::Ping => json!({"type": "Ping"}),
            Request::Hello {
                proto_version,
                features,
            } => json!({
                "type": "Hello", "proto_version": proto_version, "features": features,
            }),
            Request::ListUrns => json!({"type": "ListUrns"}),
            Request::NaiveEstimates {
                urn,
                samples,
                seed,
                threads,
            } => json!({
                "type": "NaiveEstimates", "urn": urn.0, "samples": samples,
                "seed": seed, "threads": threads,
            }),
            Request::Ags {
                urn,
                max_samples,
                c_bar,
                epoch,
                idle_limit,
                seed,
                threads,
            } => {
                let mut doc = json!({
                    "type": "Ags", "urn": urn.0, "max_samples": max_samples,
                    "seed": seed, "threads": threads,
                });
                opt(&mut doc, "c_bar", c_bar.map(|v| json!(v)));
                opt(&mut doc, "epoch", epoch.map(|v| json!(v)));
                opt(&mut doc, "idle_limit", idle_limit.map(|v| json!(v)));
                doc
            }
            Request::Sample {
                urn,
                samples,
                seed,
                threads,
            } => json!({
                "type": "Sample", "urn": urn.0, "samples": samples,
                "seed": seed, "threads": threads,
            }),
            Request::Stats { urn } => {
                let mut doc = json!({"type": "Stats"});
                opt(&mut doc, "urn", urn.map(|u| json!(u.0)));
                doc
            }
            Request::Metrics => json!({"type": "Metrics"}),
            Request::Build {
                graph,
                k,
                seed,
                lambda,
                codec,
                wait,
            } => {
                let mut doc = json!({
                    "type": "Build", "graph": graph, "k": k, "seed": seed,
                    "codec": codec.to_string(), "wait": wait,
                });
                opt(&mut doc, "lambda", lambda.map(|v| json!(v)));
                doc
            }
            Request::Batch(subs) => json!({"type": "Batch", "requests": subs}),
            Request::Shutdown => json!({"type": "Shutdown"}),
            Request::ReplFetch {
                replica,
                offset,
                prefix_crc,
                log_id,
            } => json!({
                "type": "ReplFetch", "replica": replica, "offset": offset,
                "prefix_crc": prefix_crc, "log_id": log_id,
            }),
            Request::ReplManifest => json!({"type": "ReplManifest"}),
            Request::ReplFiles { target: t, replica } => {
                let mut doc = json!({"type": "ReplFiles"});
                target(&mut doc, t);
                opt(&mut doc, "replica", replica.as_ref().map(|r| json!(r)));
                doc
            }
            Request::ReplFile {
                target: t,
                name,
                offset,
                replica,
            } => {
                let mut doc = json!({"type": "ReplFile", "name": name, "offset": offset});
                target(&mut doc, t);
                opt(&mut doc, "replica", replica.as_ref().map(|r| json!(r)));
                doc
            }
            Request::ReplStatus => json!({"type": "ReplStatus"}),
            Request::Promote => json!({"type": "Promote"}),
        }
    }
}

/// The `Hello` response payload. Answered inline by the reactor (like
/// `Ping`), so a client can negotiate before the worker pool is even
/// warm. Everything here is static for the life of the process.
pub fn hello_payload() -> Value {
    let kinds: Vec<&str> = crate::metrics::KINDS
        .iter()
        .copied()
        .filter(|k| *k != "Invalid") // a metrics label, not a request type
        .collect();
    json!({
        "server": concat!("motivo ", env!("CARGO_PKG_VERSION")),
        "proto_version": PROTO_VERSION,
        "kinds": kinds,
        "features": FEATURES,
        "max_frame": MAX_FRAME,
        "max_batch": MAX_BATCH,
        "max_pipeline": MAX_PIPELINE,
    })
}

// ---------------------------------------------------------------------------
// Typed responses
// ---------------------------------------------------------------------------

fn need(v: &Value, key: &str) -> Result<Value, String> {
    v.get(key)
        .ok_or_else(|| format!("response missing `{key}`"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| format!("response field `{key}` must be a non-negative integer"))
}

fn need_f64(v: &Value, key: &str) -> Result<f64, String> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| format!("response field `{key}` must be a number"))
}

fn need_bool(v: &Value, key: &str) -> Result<bool, String> {
    need(v, key)?
        .as_bool()
        .ok_or_else(|| format!("response field `{key}` must be a boolean"))
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    need(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("response field `{key}` must be a string"))
}

fn need_array(v: &Value, key: &str) -> Result<Vec<Value>, String> {
    need(v, key)?
        .as_array()
        .ok_or_else(|| format!("response field `{key}` must be an array"))
}

fn need_hex(v: &Value, key: &str) -> Result<Vec<u8>, String> {
    crate::repl::protocol::hex_decode(&need_str(v, key)?)
}

fn str_array(v: &Value, key: &str) -> Result<Vec<String>, String> {
    need_array(v, key)?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("response field `{key}` must hold strings"))
        })
        .collect()
}

/// What the server said in answer to a `Hello`: identity, protocol
/// version, the request kinds it accepts, and the reactor's limits.
#[derive(Clone, Debug, PartialEq)]
pub struct HelloReply {
    /// Server identity string, e.g. `"motivo 0.1.0"`.
    pub server: String,
    pub proto_version: u64,
    /// Request kinds this server dispatches (sorted).
    pub kinds: Vec<String>,
    /// Capability strings (see [`FEATURES`]).
    pub features: Vec<String>,
    pub max_frame: u64,
    pub max_batch: u64,
    /// Per-connection in-flight cap; pipelining past it earns `Busy`.
    pub max_pipeline: u64,
}

/// One manifest row of a `ListUrns` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct UrnRow {
    /// Printed id, e.g. `"urn-3"` (accepted back by `urn` fields).
    pub id: String,
    pub k: u32,
    pub seed: u64,
    pub codec: String,
    pub lambda: Option<f64>,
    /// `"pending"`, `"built"`, or `"failed"`.
    pub status: String,
    pub table_bytes: u64,
    pub records: u64,
    /// Graph fingerprint, 16 hex digits.
    pub fingerprint: String,
}

/// A `ListUrns` reply: every urn the manifest knows plus the count of
/// cached graphs.
#[derive(Clone, Debug, PartialEq)]
pub struct UrnsReply {
    pub urns: Vec<UrnRow>,
    pub graphs: u64,
}

/// One graphlet class of an estimates payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassRow {
    pub graphlet: String,
    pub occurrences: u64,
    pub colorful: f64,
    pub count: f64,
    pub frequency: f64,
}

/// A `NaiveEstimates` reply (also nested inside [`AgsReply`]).
#[derive(Clone, Debug, PartialEq)]
pub struct EstimatesReply {
    pub k: u32,
    pub samples: u64,
    pub total_count: f64,
    /// Ascending by registry index — the canonical payload order.
    pub classes: Vec<ClassRow>,
}

/// An `Ags` reply: estimates plus the adaptive-run counters.
#[derive(Clone, Debug, PartialEq)]
pub struct AgsReply {
    pub estimates: EstimatesReply,
    pub switches: u64,
    pub covered: u64,
    pub shape_usage: Vec<u64>,
}

/// One canonical-code row of a `Sample` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct TallyRow {
    /// Canonical graphlet code (serialized as a `0x…` hex string).
    pub code: u128,
    pub graphlet: String,
    pub occurrences: u64,
}

/// A `Sample` reply: a canonical-code tally, ascending by code.
#[derive(Clone, Debug, PartialEq)]
pub struct TallyReply {
    pub samples: u64,
    pub classes: Vec<TallyRow>,
}

/// A `Build` reply: the urn assigned and its status after the request
/// (post-wait when `"wait": true` was sent).
#[derive(Clone, Debug, PartialEq)]
pub struct BuildReply {
    pub urn: String,
    pub status: String,
}

/// A `ReplFetch` reply: decoded journal frame payloads from the leader.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplFetchReply {
    pub payloads: Vec<Vec<u8>>,
    /// The leader's journal length — how far behind the replica is.
    pub leader_len: u64,
    pub log_id: u32,
    /// Set when the replica's journal is not a byte prefix of the
    /// leader's lineage: discard local state and re-bootstrap.
    pub stale: bool,
}

/// A `ReplManifest` reply: raw manifest snapshot bytes plus the log id
/// binding them to a journal lineage.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplManifestReply {
    pub manifest: Vec<u8>,
    pub log_id: u32,
}

/// A `ReplFile` reply: one decoded chunk and the file's total length.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplFileReply {
    pub data: Vec<u8>,
    pub total: u64,
}

/// A `Promote` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct PromoteReply {
    pub promoted: bool,
    /// Builds the dead leader left unfinished, now swept to `failed`.
    pub swept: u64,
}

/// A typed success payload, decoded according to the *request* kind that
/// produced it (responses carry no discriminant of their own — the frame
/// `id` pairs them with requests, and the request fixes the shape).
///
/// Kinds whose payloads are run-dependent diagnostics (`Stats`,
/// `Metrics`, `ReplStatus`) and per-sub-request `Batch` envelopes stay
/// raw [`Value`]s: their schemas are wide, nested, and consumed by
/// humans or dashboards, so forcing structs on them would freeze exactly
/// the parts of the wire format meant to evolve freely.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `Ping` ack.
    Pong,
    Hello(HelloReply),
    Urns(UrnsReply),
    Estimates(EstimatesReply),
    Ags(AgsReply),
    Tally(TallyReply),
    Stats(Value),
    Metrics(Value),
    Build(BuildReply),
    /// Per-sub-request envelopes, in request order.
    Batch(Vec<Value>),
    /// `Shutdown` ack: the server is draining.
    ShuttingDown,
    ReplFetch(ReplFetchReply),
    ReplManifest(ReplManifestReply),
    ReplFiles(Vec<FileMeta>),
    ReplFile(ReplFileReply),
    ReplStatus(Value),
    Promote(PromoteReply),
}

fn parse_estimates(v: &Value) -> Result<EstimatesReply, String> {
    let classes = need_array(v, "classes")?
        .iter()
        .map(|c| {
            Ok(ClassRow {
                graphlet: need_str(c, "graphlet")?,
                occurrences: need_u64(c, "occurrences")?,
                colorful: need_f64(c, "colorful")?,
                count: need_f64(c, "count")?,
                frequency: need_f64(c, "frequency")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(EstimatesReply {
        k: need_u64(v, "k")?
            .try_into()
            .map_err(|_| "response field `k` must fit in 32 bits".to_string())?,
        samples: need_u64(v, "samples")?,
        total_count: need_f64(v, "total_count")?,
        classes,
    })
}

impl Response {
    /// Decodes a success payload for a request of `kind`
    /// ([`Request::kind`] of the request that earned it).
    pub fn parse(kind: &str, payload: &Value) -> Result<Response, String> {
        let resp = match kind {
            "Ping" => {
                need_bool(payload, "pong")?;
                Response::Pong
            }
            "Hello" => Response::Hello(HelloReply {
                server: need_str(payload, "server")?,
                proto_version: need_u64(payload, "proto_version")?,
                kinds: str_array(payload, "kinds")?,
                features: str_array(payload, "features")?,
                max_frame: need_u64(payload, "max_frame")?,
                max_batch: need_u64(payload, "max_batch")?,
                max_pipeline: need_u64(payload, "max_pipeline")?,
            }),
            "ListUrns" => Response::Urns(UrnsReply {
                urns: need_array(payload, "urns")?
                    .iter()
                    .map(|u| {
                        Ok(UrnRow {
                            id: need_str(u, "id")?,
                            k: need_u64(u, "k")? as u32,
                            seed: need_u64(u, "seed")?,
                            codec: need_str(u, "codec")?,
                            lambda: match u.get("lambda") {
                                None => None,
                                Some(l) if l.is_null() => None,
                                Some(l) => Some(l.as_f64().ok_or_else(|| {
                                    "response field `lambda` must be a number".to_string()
                                })?),
                            },
                            status: need_str(u, "status")?,
                            table_bytes: need_u64(u, "table_bytes")?,
                            records: need_u64(u, "records")?,
                            fingerprint: need_str(u, "fingerprint")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                graphs: need_u64(payload, "graphs")?,
            }),
            "NaiveEstimates" => Response::Estimates(parse_estimates(payload)?),
            "Ags" => Response::Ags(AgsReply {
                estimates: parse_estimates(&need(payload, "estimates")?)?,
                switches: need_u64(payload, "switches")?,
                covered: need_u64(payload, "covered")?,
                shape_usage: need_array(payload, "shape_usage")?
                    .iter()
                    .map(|n| {
                        n.as_u64().ok_or_else(|| {
                            "response field `shape_usage` must hold integers".to_string()
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            "Sample" => Response::Tally(TallyReply {
                samples: need_u64(payload, "samples")?,
                classes: need_array(payload, "classes")?
                    .iter()
                    .map(|c| {
                        let code = need_str(c, "code")?;
                        let code = code
                            .strip_prefix("0x")
                            .and_then(|h| u128::from_str_radix(h, 16).ok())
                            .ok_or_else(|| {
                                "response field `code` must be a 0x… hex string".to_string()
                            })?;
                        Ok(TallyRow {
                            code,
                            graphlet: need_str(c, "graphlet")?,
                            occurrences: need_u64(c, "occurrences")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            "Stats" => Response::Stats(payload.clone()),
            "Metrics" => Response::Metrics(payload.clone()),
            "Build" => Response::Build(BuildReply {
                urn: need_str(payload, "urn")?,
                status: need_str(payload, "status")?,
            }),
            "Batch" => Response::Batch(need_array(payload, "responses")?),
            "Shutdown" => {
                need_bool(payload, "shutting_down")?;
                Response::ShuttingDown
            }
            "ReplFetch" => Response::ReplFetch(ReplFetchReply {
                payloads: need_array(payload, "payloads")?
                    .iter()
                    .map(|p| {
                        p.as_str()
                            .ok_or_else(|| "response field `payloads` must hold hex".to_string())
                            .and_then(crate::repl::protocol::hex_decode)
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                leader_len: need_u64(payload, "leader_len")?,
                log_id: need_u64(payload, "log_id")? as u32,
                stale: need_bool(payload, "stale")?,
            }),
            "ReplManifest" => Response::ReplManifest(ReplManifestReply {
                manifest: need_hex(payload, "manifest")?,
                log_id: need_u64(payload, "log_id")? as u32,
            }),
            "ReplFiles" => Response::ReplFiles(
                need_array(payload, "files")?
                    .iter()
                    .map(|f| {
                        Ok(FileMeta {
                            name: need_str(f, "name")?,
                            len: need_u64(f, "len")?,
                            crc: need_u64(f, "crc")? as u32,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            ),
            "ReplFile" => Response::ReplFile(ReplFileReply {
                data: need_hex(payload, "data")?,
                total: need_u64(payload, "total")?,
            }),
            "ReplStatus" => Response::ReplStatus(payload.clone()),
            "Promote" => Response::Promote(PromoteReply {
                promoted: need_bool(payload, "promoted")?,
                swept: need_u64(payload, "swept")?,
            }),
            other => return Err(format!("unknown request kind `{other}`")),
        };
        Ok(resp)
    }
}

/// Machine-matchable error categories of the wire protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The worker queue was full; retry later (backpressure, not failure).
    Busy,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The request didn't parse or failed validation.
    BadRequest,
    /// No urn with the requested id.
    UnknownUrn,
    /// The urn exists but is not (yet) built.
    NotBuilt,
    /// The server is a read-only replica; send mutations to its leader
    /// (or promote it first).
    ReadOnly,
    /// Any other store-side failure.
    Store,
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Busy => "Busy",
            ErrorKind::ShuttingDown => "ShuttingDown",
            ErrorKind::BadRequest => "BadRequest",
            ErrorKind::UnknownUrn => "UnknownUrn",
            ErrorKind::NotBuilt => "NotBuilt",
            ErrorKind::ReadOnly => "ReadOnly",
            ErrorKind::Store => "Store",
        }
    }

    /// Maps a store error onto the wire categories.
    pub fn of_store(e: &StoreError) -> ErrorKind {
        match e {
            StoreError::UnknownUrn(_) => ErrorKind::UnknownUrn,
            StoreError::NotBuilt(_) => ErrorKind::NotBuilt,
            StoreError::ReadOnly => ErrorKind::ReadOnly,
            _ => ErrorKind::Store,
        }
    }
}

/// A success envelope: `{"id": …, "ok": payload}`.
pub fn ok_response(id: &Value, payload: Value) -> Value {
    json!({"id": id.clone(), "ok": payload})
}

/// An error envelope: `{"id": …, "error": {"kind", "message"}}`.
pub fn error_response(id: &Value, kind: ErrorKind, message: &str) -> Value {
    let error = json!({"kind": kind.as_str(), "message": message});
    json!({"id": id.clone(), "error": error})
}

/// Splices a success envelope from already-serialized parts, producing
/// the exact bytes `to_string(&ok_response(id, payload))` would — this is
/// how a cached payload is framed without re-parsing it (asserted
/// byte-for-byte in this module's tests).
pub fn ok_envelope_text(id_text: &str, payload_text: &str) -> String {
    format!("{{\"id\":{id_text},\"ok\":{payload_text}}}")
}

/// Serializes an error envelope directly to text (the splicing
/// counterpart of [`ok_envelope_text`], for per-sub-request batch errors).
pub fn error_envelope_text(id_text: &str, kind: ErrorKind, message: &str) -> String {
    let error = json!({"kind": kind.as_str(), "message": message});
    format!(
        "{{\"id\":{id_text},\"error\":{}}}",
        serde_json::to_string(&error).expect("error serialize")
    )
}

/// Serializes an estimate set. Classes are emitted ascending by registry
/// index — with the fresh per-request registry the server uses, that order
/// (and hence the whole payload) is a pure function of the tally, which is
/// what makes responses byte-identical to in-process calls.
pub fn estimates_json(est: &Estimates, registry: &GraphletRegistry) -> Value {
    let classes: Vec<Value> = est
        .per_graphlet
        .iter()
        .map(|e| {
            json!({
                "graphlet": name(&registry.info(e.index).graphlet),
                "occurrences": e.occurrences,
                "colorful": e.colorful,
                "count": e.count,
                "frequency": e.frequency,
            })
        })
        .collect();
    json!({
        "k": est.k,
        "samples": est.samples,
        "total_count": est.total_count(),
        "classes": classes,
    })
}

/// Serializes an AGS outcome (estimates plus the adaptive-run counters).
pub fn ags_json(res: &AgsResult, registry: &GraphletRegistry) -> Value {
    json!({
        "estimates": estimates_json(&res.estimates, registry),
        "switches": res.switches,
        "covered": res.covered,
        "shape_usage": res.shape_usage.clone(),
    })
}

/// Serializes a canonical-code tally, ascending by code (deterministic —
/// hash-map iteration order never leaks into the payload).
pub fn tally_json(tally: &HashMap<u128, u64>, samples: u64) -> Value {
    let mut rows: Vec<(u128, u64)> = tally.iter().map(|(&c, &n)| (c, n)).collect();
    rows.sort_unstable_by_key(|&(c, _)| c);
    let classes: Vec<Value> = rows
        .into_iter()
        .map(|(code, occurrences)| {
            let graphlet = Graphlet::from_code(code).expect("tally codes are canonical");
            json!({
                "code": format!("{code:#x}"),
                "graphlet": name(&graphlet),
                "occurrences": occurrences,
            })
        })
        .collect();
    json!({"samples": samples, "classes": classes})
}

/// Serializes one manifest entry.
pub fn urn_json(m: &UrnMeta) -> Value {
    json!({
        "id": m.id.to_string(),
        "k": m.key.k,
        "seed": m.key.seed,
        "codec": m.key.codec.to_string(),
        "lambda": m.key.lambda(),
        "status": match m.status {
            BuildStatus::Pending => "pending",
            BuildStatus::Built => "built",
            BuildStatus::Failed => "failed",
        },
        "table_bytes": m.table_bytes,
        "records": m.records,
        "fingerprint": format!("{:016x}", m.key.fingerprint),
    })
}

/// Serializes serving counters, latency quantiles included (log-bucket
/// histogram estimates — see `motivo_obs::Histogram`; `max_us` is exact).
pub fn query_stats_json(s: &QueryStats) -> Value {
    json!({
        "queries": s.queries,
        "cache_hits": s.cache_hits,
        "cache_misses": s.cache_misses,
        "total_latency_ns": s.total_latency.as_nanos() as u64,
        "p50_us": s.p50_latency.as_micros() as u64,
        "p90_us": s.p90_latency.as_micros() as u64,
        "p99_us": s.p99_latency.as_micros() as u64,
        "max_us": s.max_latency.as_micros() as u64,
    })
}

/// Serializes cache counters.
pub fn cache_stats_json(s: &CacheStats) -> Value {
    json!({
        "hits": s.hits,
        "misses": s.misses,
        "evictions": s.evictions,
        "resident_bytes": s.resident_bytes,
        "resident_urns": s.resident_urns,
    })
}

/// Serializes the query-result cache counters (hits/misses/singleflight
/// coalescing — `misses` counts estimator runs through the cache).
pub fn query_cache_stats_json(s: &crate::cache::QueryCacheStats) -> Value {
    json!({
        "hits": s.hits,
        "misses": s.misses,
        "coalesced": s.coalesced,
        "evictions": s.evictions,
        "resident_bytes": s.resident_bytes,
        "resident_entries": s.resident_entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::from_str;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"type\":\"Ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&b"{\"type\":\"Ping\"}"[..])
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7); // header + half the payload
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn requests_parse_with_defaults() {
        let req = Request::parse(&from_str(r#"{"type":"ListUrns"}"#).unwrap()).unwrap();
        assert_eq!(req, Request::ListUrns);

        let v = from_str(r#"{"id":7,"type":"NaiveEstimates","urn":"urn-3","seed":9}"#).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        let req = Request::parse(&v).unwrap();
        assert_eq!(
            req,
            Request::NaiveEstimates {
                urn: UrnId(3),
                samples: 100_000,
                seed: 9,
                threads: 0,
            }
        );

        let v = from_str(r#"{"type":"Build","graph":"g.mtvg","k":5,"codec":"succinct"}"#).unwrap();
        let req = Request::parse(&v).unwrap();
        assert_eq!(
            req,
            Request::Build {
                graph: "g.mtvg".into(),
                k: 5,
                seed: 0,
                lambda: None,
                codec: RecordCodec::Succinct,
                wait: false,
            }
        );
    }

    #[test]
    fn replication_requests_parse() {
        let parse = |doc: &str| Request::parse(&from_str(doc).unwrap()).unwrap();
        assert_eq!(
            parse(r#"{"type":"ReplFetch","replica":"r1","offset":96,"prefix_crc":7,"log_id":12}"#),
            Request::ReplFetch {
                replica: "r1".into(),
                offset: 96,
                prefix_crc: 7,
                log_id: 12,
            }
        );
        assert_eq!(parse(r#"{"type":"ReplManifest"}"#), Request::ReplManifest);
        assert_eq!(
            parse(r#"{"type":"ReplFiles","urn":3}"#),
            Request::ReplFiles {
                target: ReplTarget::Urn(UrnId(3)),
                replica: None,
            }
        );
        assert_eq!(
            parse(
                r#"{"type":"ReplFile","graph":"00ff00ff00ff00ff","name":"level-2.mtvt","offset":1024,"replica":"r2"}"#
            ),
            Request::ReplFile {
                target: ReplTarget::Graph(0x00ff00ff00ff00ff),
                name: "level-2.mtvt".into(),
                offset: 1024,
                replica: Some("r2".into()),
            }
        );
        assert_eq!(parse(r#"{"type":"ReplStatus"}"#), Request::ReplStatus);
        assert_eq!(parse(r#"{"type":"Promote"}"#), Request::Promote);
        // Replication responses depend on mutable server state: never cached.
        for doc in [
            r#"{"type":"ReplManifest"}"#,
            r#"{"type":"ReplStatus"}"#,
            r#"{"type":"ReplFiles","urn":0}"#,
        ] {
            assert_eq!(parse(doc).cache_key(1), None, "{doc}");
        }
    }

    #[test]
    fn bad_replication_requests_are_rejected() {
        for (doc, needle) in [
            (r#"{"type":"ReplFetch","offset":0}"#, "`replica`"),
            (
                r#"{"type":"ReplFetch","replica":"r","prefix_crc":4294967296}"#,
                "32 bits",
            ),
            (r#"{"type":"ReplFiles"}"#, "exactly one"),
            (
                r#"{"type":"ReplFiles","urn":0,"graph":"00"}"#,
                "exactly one",
            ),
            (r#"{"type":"ReplFiles","graph":"zz"}"#, "fingerprint"),
            (r#"{"type":"ReplFile","urn":0}"#, "`name`"),
        ] {
            let err = Request::parse(&from_str(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        for (doc, needle) in [
            (r#"{"no_type":1}"#, "type"),
            (r#"{"type":"Teleport"}"#, "unknown request type"),
            (r#"{"type":"NaiveEstimates"}"#, "`urn`"),
            (r#"{"type":"NaiveEstimates","urn":-3}"#, "`urn`"),
            (r#"{"type":"Sample","urn":0,"samples":"many"}"#, "`samples`"),
            (r#"{"type":"Build","graph":"g","k":1}"#, "`k`"),
            (r#"{"type":"Build","k":4}"#, "`graph`"),
            (
                r#"{"type":"Build","graph":"g","k":4,"codec":"zip"}"#,
                "codec",
            ),
        ] {
            let err = Request::parse(&from_str(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn batch_parses_and_keeps_subrequests_raw() {
        let v = from_str(
            r#"{"id":1,"type":"Batch","requests":[{"type":"Ping"},{"type":"Nope"},{"bad":0}]}"#,
        )
        .unwrap();
        let Request::Batch(subs) = Request::parse(&v).unwrap() else {
            panic!("expected Batch");
        };
        // Sub-documents are raw: the malformed ones parse later, into
        // per-sub-request error envelopes.
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0].get("type").unwrap().as_str(), Some("Ping"));

        let err = Request::parse(&from_str(r#"{"type":"Batch"}"#).unwrap()).unwrap_err();
        assert!(err.contains("requests"), "{err}");
        let err =
            Request::parse(&from_str(r#"{"type":"Batch","requests":3}"#).unwrap()).unwrap_err();
        assert!(err.contains("array"), "{err}");
    }

    #[test]
    fn oversized_batch_is_rejected() {
        let doc = format!(
            r#"{{"type":"Batch","requests":[{}]}}"#,
            vec![r#"{"type":"Ping"}"#; MAX_BATCH + 1].join(",")
        );
        let err = Request::parse(&from_str(&doc).unwrap()).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn cache_keys_are_canonical_and_ignore_threads_and_id() {
        let parse = |doc: &str| Request::parse(&from_str(doc).unwrap()).unwrap();
        // Field order, echoed id, and thread count don't change the key.
        let a = parse(r#"{"id":1,"type":"Sample","urn":0,"samples":500,"seed":3,"threads":1}"#);
        let b =
            parse(r#"{"id":2,"seed":3,"samples":500,"urn":"urn-0","type":"Sample","threads":8}"#);
        assert_eq!(a.cache_key(0xabcd), b.cache_key(0xabcd));
        // Different seed, samples, urn, or fingerprint: different keys.
        let c = parse(r#"{"type":"Sample","urn":0,"samples":500,"seed":4}"#);
        assert_ne!(a.cache_key(0xabcd), c.cache_key(0xabcd));
        assert_ne!(a.cache_key(0xabcd), a.cache_key(0xabce));
        // Ags optional knobs are materialized into the key.
        let d = parse(r#"{"type":"Ags","urn":0,"max_samples":100,"seed":1}"#);
        let e = parse(r#"{"type":"Ags","urn":0,"max_samples":100,"seed":1,"epoch":64}"#);
        assert_ne!(d.cache_key(1), e.cache_key(1));
        // Mutable-state requests are not cacheable.
        assert_eq!(parse(r#"{"type":"ListUrns"}"#).cache_key(1), None);
        assert_eq!(parse(r#"{"type":"Stats"}"#).cache_key(1), None);
        assert_eq!(parse(r#"{"type":"Metrics"}"#).cache_key(1), None);
        assert_eq!(
            parse(r#"{"type":"Batch","requests":[]}"#).cache_key(1),
            None
        );
    }

    /// The splicing fast path must produce the exact bytes the `Value`
    /// path would — otherwise a cached response would differ from a cold
    /// one, breaking the cache-exactness guarantee.
    #[test]
    fn spliced_envelopes_match_value_serialization() {
        for (id, payload) in [
            (json!(3), json!({"x": 1})),
            (json!(null), json!([1, 2, 3])),
            (json!("req-7"), json!({"nested": json!({"deep": true})})),
        ] {
            let id_text = serde_json::to_string(&id).unwrap();
            let payload_text = serde_json::to_string(&payload).unwrap();
            assert_eq!(
                ok_envelope_text(&id_text, &payload_text),
                serde_json::to_string(&ok_response(&id, payload)).unwrap()
            );
            assert_eq!(
                error_envelope_text(&id_text, ErrorKind::Busy, "queue full"),
                serde_json::to_string(&error_response(&id, ErrorKind::Busy, "queue full")).unwrap()
            );
        }
    }

    #[test]
    fn envelopes_have_the_documented_shape() {
        let ok = ok_response(&json!(3), json!({"x": 1}));
        assert_eq!(
            serde_json::to_string(&ok).unwrap(),
            r#"{"id":3,"ok":{"x":1}}"#
        );
        let err = error_response(&json!(null), ErrorKind::Busy, "queue full");
        let text = serde_json::to_string(&err).unwrap();
        assert!(text.contains(r#""kind":"Busy""#), "{text}");
    }

    /// `to_value` → `parse` must reproduce the request exactly for every
    /// variant, including the absent-vs-set distinction of optional
    /// fields — this is the contract the typed client rides on.
    #[test]
    fn to_value_round_trips_every_variant() {
        let reqs = vec![
            Request::Ping,
            Request::Hello {
                proto_version: 1,
                features: vec!["batch".into()],
            },
            Request::Hello {
                proto_version: PROTO_VERSION,
                features: Vec::new(),
            },
            Request::ListUrns,
            Request::NaiveEstimates {
                urn: UrnId(3),
                samples: 500,
                seed: 7,
                threads: 2,
            },
            Request::Ags {
                urn: UrnId(1),
                max_samples: 1000,
                c_bar: None,
                epoch: None,
                idle_limit: None,
                seed: 0,
                threads: 0,
            },
            Request::Ags {
                urn: UrnId(1),
                max_samples: 1000,
                c_bar: Some(40),
                epoch: Some(64),
                idle_limit: Some(9),
                seed: 3,
                threads: 1,
            },
            Request::Sample {
                urn: UrnId(2),
                samples: 64,
                seed: 1,
                threads: 0,
            },
            Request::Stats { urn: None },
            Request::Stats { urn: Some(UrnId(4)) },
            Request::Metrics,
            Request::Build {
                graph: "g.mtvg".into(),
                k: 5,
                seed: 11,
                lambda: None,
                codec: RecordCodec::Plain,
                wait: false,
            },
            Request::Build {
                graph: "g.txt".into(),
                k: 4,
                seed: 0,
                lambda: Some(0.5),
                codec: RecordCodec::Succinct,
                wait: true,
            },
            Request::Batch(vec![json!({"type": "Ping"})]),
            Request::Shutdown,
            Request::ReplFetch {
                replica: "r1".into(),
                offset: 96,
                prefix_crc: 0xdead_beef,
                log_id: 42,
            },
            Request::ReplManifest,
            Request::ReplFiles {
                target: ReplTarget::Urn(UrnId(1)),
                replica: None,
            },
            Request::ReplFiles {
                target: ReplTarget::Graph(0xabcd),
                replica: Some("r2".into()),
            },
            Request::ReplFile {
                target: ReplTarget::Urn(UrnId(1)),
                name: "table.bin".into(),
                offset: 4096,
                replica: Some("r1".into()),
            },
            Request::ReplStatus,
            Request::Promote,
        ];
        for req in reqs {
            let doc = req.to_value();
            let back = Request::parse(&doc).unwrap_or_else(|e| panic!("{e} for {doc:?}"));
            assert_eq!(back, req, "round-trip through {doc:?}");
            // And through actual wire text, like the client sends it.
            let text = serde_json::to_string(&doc).unwrap();
            assert_eq!(Request::parse(&from_str(&text).unwrap()).unwrap(), req);
        }
    }

    #[test]
    fn hello_payload_advertises_kinds_and_limits() {
        let hello = hello_payload();
        let reply = Response::parse("Hello", &hello).unwrap();
        let Response::Hello(h) = reply else {
            panic!("expected Hello, got {reply:?}")
        };
        assert_eq!(h.proto_version, PROTO_VERSION);
        assert_eq!(h.max_frame, MAX_FRAME as u64);
        assert_eq!(h.max_batch, MAX_BATCH as u64);
        assert_eq!(h.max_pipeline, MAX_PIPELINE as u64);
        assert!(h.server.starts_with("motivo "), "{}", h.server);
        assert!(h.features.iter().any(|f| f == "pipelining"));
        // Every advertised kind parses as a request type; `Invalid` (a
        // metrics-only label) is not advertised.
        assert!(!h.kinds.iter().any(|k| k == "Invalid"));
        assert!(h.kinds.iter().any(|k| k == "Hello"));
        assert!(h.kinds.iter().any(|k| k == "NaiveEstimates"));
    }

    #[test]
    fn responses_decode_typed_payloads() {
        let est = from_str(
            r#"{"k":3,"samples":10,"total_count":6.5,"classes":[
                {"graphlet":"path-3","occurrences":4,"colorful":2.0,
                 "count":5.5,"frequency":0.8}]}"#,
        )
        .unwrap();
        let Response::Estimates(e) = Response::parse("NaiveEstimates", &est).unwrap() else {
            panic!()
        };
        assert_eq!(e.k, 3);
        assert_eq!(e.classes.len(), 1);
        assert_eq!(e.classes[0].graphlet, "path-3");
        assert_eq!(e.classes[0].colorful, 2.0);

        let ags = json!({
            "estimates": est, "switches": 2, "covered": 1, "shape_usage": [3, 0],
        });
        let Response::Ags(a) = Response::parse("Ags", &ags).unwrap() else {
            panic!()
        };
        assert_eq!(a.switches, 2);
        assert_eq!(a.shape_usage, vec![3, 0]);
        assert_eq!(a.estimates.total_count, 6.5);

        let tally = from_str(
            r#"{"samples":8,"classes":[
                {"code":"0x1f","graphlet":"triangle","occurrences":8}]}"#,
        )
        .unwrap();
        let Response::Tally(t) = Response::parse("Sample", &tally).unwrap() else {
            panic!()
        };
        assert_eq!(t.classes[0].code, 0x1f);

        let urns = from_str(
            r#"{"graphs":2,"urns":[
                {"id":"urn-1","k":4,"seed":0,"codec":"plain","lambda":null,
                 "status":"built","table_bytes":640,"records":16,
                 "fingerprint":"00000000000000ab"}]}"#,
        )
        .unwrap();
        let Response::Urns(u) = Response::parse("ListUrns", &urns).unwrap() else {
            panic!()
        };
        assert_eq!(u.graphs, 2);
        assert_eq!(u.urns[0].id, "urn-1");
        assert_eq!(u.urns[0].lambda, None);

        let fetch = from_str(
            r#"{"payloads":["00ff"],"leader_len":96,"log_id":7,"stale":false}"#,
        )
        .unwrap();
        let Response::ReplFetch(f) = Response::parse("ReplFetch", &fetch).unwrap() else {
            panic!()
        };
        assert_eq!(f.payloads, vec![vec![0x00, 0xff]]);
        assert!(!f.stale);

        let files = from_str(r#"{"files":[{"name":"t.bin","len":9,"crc":5}]}"#).unwrap();
        let Response::ReplFiles(rows) = Response::parse("ReplFiles", &files).unwrap() else {
            panic!()
        };
        assert_eq!(rows[0].name, "t.bin");

        assert_eq!(
            Response::parse("Ping", &json!({"pong": true})).unwrap(),
            Response::Pong
        );
        assert_eq!(
            Response::parse("Shutdown", &json!({"shutting_down": true})).unwrap(),
            Response::ShuttingDown
        );

        // Malformed payloads fail with a field-naming message.
        let err = Response::parse("NaiveEstimates", &json!({"k": 3})).unwrap_err();
        assert!(err.contains("samples") || err.contains("classes"), "{err}");
        assert!(Response::parse("Nope", &json!({})).is_err());
    }
}
