//! The wire protocol: length-prefixed JSON frames, request parsing, and
//! response payload serialization (documented in DESIGN.md §6).
//!
//! Every frame is a `u32le` byte length followed by that many bytes of
//! UTF-8 JSON. Requests are objects with a `"type"` discriminant and an
//! optional `"id"` the server echoes back verbatim, so a pipelining client
//! can match out-of-order responses to requests. Responses carry either
//! `"ok"` (the payload) or `"error"` (`{"kind", "message"}`).
//!
//! **Determinism:** payloads never embed wall-clock or other
//! run-dependent values, and every collection is serialized in a canonical
//! order (classes ascending by registry index, tallies ascending by
//! canonical code). A request carrying a seed therefore produces
//! byte-identical payload text to the equivalent in-process
//! [`motivo_store::StoreQuery`] call, at any worker-pool size.

use motivo_core::{AgsResult, Estimates, RecordCodec};
use motivo_graphlet::{name, Graphlet, GraphletRegistry};
use motivo_store::{BuildStatus, CacheStats, QueryStats, StoreError, UrnId, UrnMeta};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::io::{Read, Write};

/// Hard cap on one frame's payload; a peer announcing more is corrupt (or
/// hostile) and gets its connection dropped instead of an allocation.
pub const MAX_FRAME: usize = 8 << 20;

/// Hard cap on sub-requests per `Batch` frame: bounds the memory one
/// worker slot can be asked to hold, like [`MAX_FRAME`] bounds one frame.
pub const MAX_BATCH: usize = 1024;

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary (the peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame and flushes it. Header and payload go
/// out as **one** write: on an unbuffered socket, two small writes make
/// two packets, and Nagle's algorithm + delayed ACK turn every
/// request/response round-trip into a multi-millisecond stall.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// A parsed request. Field defaults (`samples` 100 000, `seed` 0,
/// `threads` 0 = all cores) follow the CLI's.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered inline by the connection reader, so it
    /// works even when the worker queue is saturated.
    Ping,
    /// Every urn the store's manifest knows.
    ListUrns,
    /// Naive (uniform treelet) estimation against a built urn.
    NaiveEstimates {
        urn: UrnId,
        samples: u64,
        seed: u64,
        threads: usize,
    },
    /// Adaptive graphlet sampling against a built urn.
    Ags {
        urn: UrnId,
        max_samples: u64,
        c_bar: Option<u64>,
        epoch: Option<u64>,
        idle_limit: Option<u64>,
        seed: u64,
        threads: usize,
    },
    /// Raw graphlet occurrences: a canonical-code tally of sampled copies.
    Sample {
        urn: UrnId,
        samples: u64,
        seed: u64,
        threads: usize,
    },
    /// Serving counters, per urn or (with no `"urn"`) aggregated.
    Stats { urn: Option<UrnId> },
    /// The server's metrics registry: per-request-kind counters and
    /// latency quantiles, plus a Prometheus-style text rendering of every
    /// counter/gauge/histogram in the store's [`motivo_obs::Registry`].
    Metrics,
    /// Enqueue a build on the store's background worker. `graph` is a path
    /// readable by the *server*. With `"wait": true` the response is held
    /// until the build finishes (this occupies one pool worker).
    Build {
        graph: String,
        k: u32,
        seed: u64,
        lambda: Option<f64>,
        codec: RecordCodec,
        wait: bool,
    },
    /// A list of sub-requests carried through one frame and one
    /// worker-pool slot. Sub-documents are kept raw and parsed when the
    /// batch executes, so one malformed sub-request becomes a
    /// per-sub-request error envelope instead of failing the whole batch.
    /// Responses come back in request order.
    Batch(Vec<Value>),
    /// Graceful shutdown: stop accepting, drain in-flight requests, flush
    /// store stats, exit. Answered inline like `Ping`. Refused with
    /// [`ErrorKind::ReadOnly`] on a replica — a replica's lifecycle belongs
    /// to its operator (or a `Promote`), not to arbitrary wire peers.
    Shutdown,
    /// Replication pull (replica → leader): journal frames from `offset`
    /// onward. `prefix_crc` is the CRC32 of the replica's own journal
    /// bytes and `log_id` the CRC32 of the manifest snapshot it
    /// bootstrapped from; the leader flags the fetch `stale` unless both
    /// prove the replica's log is a byte prefix of the same lineage.
    ReplFetch {
        replica: String,
        offset: u64,
        prefix_crc: u32,
        log_id: u32,
    },
    /// Replication bootstrap: the leader's raw `MANIFEST` snapshot bytes.
    ReplManifest,
    /// Replication file inventory (name/len/crc per file) for one urn
    /// directory or one cached graph, so a replica fetches only what it is
    /// missing. `replica` (optional) attributes the traffic in `ReplStatus`.
    ReplFiles {
        target: ReplTarget,
        replica: Option<String>,
    },
    /// One chunk of a sealed urn or graph file, hex-encoded.
    ReplFile {
        target: ReplTarget,
        name: String,
        offset: u64,
        replica: Option<String>,
    },
    /// Replication health: role, journal offset, log id, and (on a
    /// leader) per-replica lag; (on a replica) sync-loop status.
    ReplStatus,
    /// Turn a replica into a leader: clear the read-only gate, sweep
    /// builds the dead leader left unfinished, stop the sync loop.
    /// `BadRequest` on a server that is already a leader.
    Promote,
}

/// What a [`Request::ReplFiles`]/[`Request::ReplFile`] request addresses:
/// one urn's directory of sealed table files, or one graph cached by
/// fingerprint in the store's `graphs/` directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplTarget {
    Urn(UrnId),
    Graph(u64),
}

fn get_u64(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    Ok(get_opt_u64(v, key)?.unwrap_or(default))
}

fn get_opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn get_urn(v: &Value) -> Result<UrnId, String> {
    let f = v.get("urn").ok_or("`urn` is required")?;
    if let Some(n) = f.as_u64() {
        return Ok(UrnId(n));
    }
    // Accept the printed form too ("urn-3"), as the CLI does.
    f.as_str()
        .and_then(|s| s.strip_prefix("urn-").unwrap_or(s).parse().ok())
        .map(UrnId)
        .ok_or_else(|| "`urn` must be an id number or \"urn-N\"".to_string())
}

fn get_u32(v: &Value, key: &str) -> Result<u32, String> {
    get_u64(v, key, 0)?
        .try_into()
        .map_err(|_| format!("`{key}` must fit in 32 bits"))
}

fn get_repl_target(v: &Value) -> Result<ReplTarget, String> {
    match (v.get("urn"), v.get("graph")) {
        (Some(_), None) => Ok(ReplTarget::Urn(get_urn(v)?)),
        (None, Some(g)) => g
            .as_str()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .map(ReplTarget::Graph)
            .ok_or_else(|| "`graph` must be a 16-hex-digit fingerprint".to_string()),
        _ => Err("exactly one of `urn` or `graph` is required".to_string()),
    }
}

fn get_opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

impl Request {
    /// Parses a request document (the caller extracts the echoed `"id"`
    /// itself, so parse failures can still carry it).
    pub fn parse(v: &Value) -> Result<Request, String> {
        let ty = v
            .get("type")
            .and_then(|t| t.as_str().map(str::to_string))
            .ok_or("request must carry a string `type`")?;
        let seed = get_u64(v, "seed", 0)?;
        let threads = get_u64(v, "threads", 0)? as usize;
        let req = match ty.as_str() {
            "Ping" => Request::Ping,
            "ListUrns" => Request::ListUrns,
            "NaiveEstimates" => Request::NaiveEstimates {
                urn: get_urn(v)?,
                samples: get_u64(v, "samples", 100_000)?,
                seed,
                threads,
            },
            "Ags" => Request::Ags {
                urn: get_urn(v)?,
                max_samples: get_u64(v, "max_samples", 100_000)?,
                c_bar: get_opt_u64(v, "c_bar")?,
                epoch: get_opt_u64(v, "epoch")?,
                idle_limit: get_opt_u64(v, "idle_limit")?,
                seed,
                threads,
            },
            "Sample" => Request::Sample {
                urn: get_urn(v)?,
                samples: get_u64(v, "samples", 100_000)?,
                seed,
                threads,
            },
            "Stats" => Request::Stats {
                urn: if v.get("urn").is_some() {
                    Some(get_urn(v)?)
                } else {
                    None
                },
            },
            "Metrics" => Request::Metrics,
            "Build" => Request::Build {
                graph: v
                    .get("graph")
                    .and_then(|g| g.as_str().map(str::to_string))
                    .ok_or("`graph` (a server-side path) is required")?,
                k: get_u64(v, "k", 0).and_then(|k| {
                    if (2..=16).contains(&k) {
                        Ok(k as u32)
                    } else {
                        Err("`k` must be in [2, 16]".to_string())
                    }
                })?,
                seed,
                lambda: match v.get("lambda") {
                    None => None,
                    Some(l) => Some(l.as_f64().ok_or("`lambda` must be a number")?),
                },
                codec: match v.get("codec") {
                    None => RecordCodec::Plain,
                    Some(c) => c
                        .as_str()
                        .ok_or_else(|| "`codec` must be a string".to_string())
                        .and_then(str::parse)?,
                },
                wait: match v.get("wait") {
                    None => false,
                    Some(w) => w.as_bool().ok_or("`wait` must be a boolean")?,
                },
            },
            "Batch" => {
                let subs = v
                    .get("requests")
                    .ok_or("`requests` (an array of sub-requests) is required")?;
                let subs = subs
                    .as_array()
                    .ok_or("`requests` must be an array of request documents")?;
                if subs.len() > MAX_BATCH {
                    return Err(format!(
                        "batch of {} sub-requests exceeds the {MAX_BATCH}-request cap",
                        subs.len()
                    ));
                }
                Request::Batch(subs)
            }
            "Shutdown" => Request::Shutdown,
            "ReplFetch" => Request::ReplFetch {
                replica: v
                    .get("replica")
                    .and_then(|r| r.as_str().map(str::to_string))
                    .ok_or("`replica` (the replica's name) is required")?,
                offset: get_u64(v, "offset", 0)?,
                prefix_crc: get_u32(v, "prefix_crc")?,
                log_id: get_u32(v, "log_id")?,
            },
            "ReplManifest" => Request::ReplManifest,
            "ReplFiles" => Request::ReplFiles {
                target: get_repl_target(v)?,
                replica: get_opt_str(v, "replica")?,
            },
            "ReplFile" => Request::ReplFile {
                target: get_repl_target(v)?,
                name: v
                    .get("name")
                    .and_then(|n| n.as_str().map(str::to_string))
                    .ok_or("`name` (the file name) is required")?,
                offset: get_u64(v, "offset", 0)?,
                replica: get_opt_str(v, "replica")?,
            },
            "ReplStatus" => Request::ReplStatus,
            "Promote" => Request::Promote,
            other => return Err(format!("unknown request type `{other}`")),
        };
        Ok(req)
    }

    /// The canonical cache key of a deterministic request, or `None` for
    /// request types whose responses depend on mutable server state
    /// (`ListUrns`, `Stats`, `Build`, …). `content_id` is the urn's
    /// build-key content identity (graph fingerprint + k + seed + bias +
    /// 0-rooting + codec, [`motivo_store::BuildKey::content_id`]),
    /// binding the key to the urn's *content* so a store whose ids were
    /// ever reassigned — even to a different build of the same graph —
    /// cannot replay a stale payload.
    ///
    /// The key is the request's canonical serialization minus the echoed
    /// `id` — fixed field order, defaults materialized — so semantically
    /// identical frames (`{"seed":3,"type":"Sample",…}` vs
    /// `{"type":"Sample",…,"seed":3}`) share an entry. `threads` is
    /// deliberately **excluded**: seeded responses are byte-identical at
    /// any thread count (DESIGN.md §6.4), so requests differing only in
    /// `threads` are the same cache line — the determinism invariant
    /// working as a performance feature.
    pub fn cache_key(&self, content_id: u64) -> Option<String> {
        let fp = format!("{content_id:016x}");
        let doc = match self {
            Request::NaiveEstimates {
                urn,
                samples,
                seed,
                threads: _,
            } => json!({
                "type": "NaiveEstimates", "fp": fp, "urn": urn.0,
                "samples": samples, "seed": seed,
            }),
            Request::Ags {
                urn,
                max_samples,
                c_bar,
                epoch,
                idle_limit,
                seed,
                threads: _,
            } => json!({
                "type": "Ags", "fp": fp, "urn": urn.0,
                "max_samples": max_samples, "c_bar": c_bar, "epoch": epoch,
                "idle_limit": idle_limit, "seed": seed,
            }),
            Request::Sample {
                urn,
                samples,
                seed,
                threads: _,
            } => json!({
                "type": "Sample", "fp": fp, "urn": urn.0,
                "samples": samples, "seed": seed,
            }),
            _ => return None,
        };
        Some(serde_json::to_string(&doc).expect("key serialize"))
    }

    /// The request's kind name — the `"type"` discriminant it parsed
    /// from. This is the label the server's per-kind metrics
    /// (`server.requests.<kind>`, `server.latency.<kind>`, …) hang off,
    /// so the set of values is closed and stable.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::ListUrns => "ListUrns",
            Request::NaiveEstimates { .. } => "NaiveEstimates",
            Request::Ags { .. } => "Ags",
            Request::Sample { .. } => "Sample",
            Request::Stats { .. } => "Stats",
            Request::Metrics => "Metrics",
            Request::Build { .. } => "Build",
            Request::Batch(_) => "Batch",
            Request::Shutdown => "Shutdown",
            Request::ReplFetch { .. } => "ReplFetch",
            Request::ReplManifest => "ReplManifest",
            Request::ReplFiles { .. } => "ReplFiles",
            Request::ReplFile { .. } => "ReplFile",
            Request::ReplStatus => "ReplStatus",
            Request::Promote => "Promote",
        }
    }

    /// The urn a cacheable request targets ([`Request::cache_key`] needs
    /// its content id); `None` for uncacheable request types.
    pub fn cached_urn(&self) -> Option<UrnId> {
        match self {
            Request::NaiveEstimates { urn, .. }
            | Request::Ags { urn, .. }
            | Request::Sample { urn, .. } => Some(*urn),
            _ => None,
        }
    }
}

/// Machine-matchable error categories of the wire protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The worker queue was full; retry later (backpressure, not failure).
    Busy,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The request didn't parse or failed validation.
    BadRequest,
    /// No urn with the requested id.
    UnknownUrn,
    /// The urn exists but is not (yet) built.
    NotBuilt,
    /// The server is a read-only replica; send mutations to its leader
    /// (or promote it first).
    ReadOnly,
    /// Any other store-side failure.
    Store,
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Busy => "Busy",
            ErrorKind::ShuttingDown => "ShuttingDown",
            ErrorKind::BadRequest => "BadRequest",
            ErrorKind::UnknownUrn => "UnknownUrn",
            ErrorKind::NotBuilt => "NotBuilt",
            ErrorKind::ReadOnly => "ReadOnly",
            ErrorKind::Store => "Store",
        }
    }

    /// Maps a store error onto the wire categories.
    pub fn of_store(e: &StoreError) -> ErrorKind {
        match e {
            StoreError::UnknownUrn(_) => ErrorKind::UnknownUrn,
            StoreError::NotBuilt(_) => ErrorKind::NotBuilt,
            StoreError::ReadOnly => ErrorKind::ReadOnly,
            _ => ErrorKind::Store,
        }
    }
}

/// A success envelope: `{"id": …, "ok": payload}`.
pub fn ok_response(id: &Value, payload: Value) -> Value {
    json!({"id": id.clone(), "ok": payload})
}

/// An error envelope: `{"id": …, "error": {"kind", "message"}}`.
pub fn error_response(id: &Value, kind: ErrorKind, message: &str) -> Value {
    let error = json!({"kind": kind.as_str(), "message": message});
    json!({"id": id.clone(), "error": error})
}

/// Splices a success envelope from already-serialized parts, producing
/// the exact bytes `to_string(&ok_response(id, payload))` would — this is
/// how a cached payload is framed without re-parsing it (asserted
/// byte-for-byte in this module's tests).
pub fn ok_envelope_text(id_text: &str, payload_text: &str) -> String {
    format!("{{\"id\":{id_text},\"ok\":{payload_text}}}")
}

/// Serializes an error envelope directly to text (the splicing
/// counterpart of [`ok_envelope_text`], for per-sub-request batch errors).
pub fn error_envelope_text(id_text: &str, kind: ErrorKind, message: &str) -> String {
    let error = json!({"kind": kind.as_str(), "message": message});
    format!(
        "{{\"id\":{id_text},\"error\":{}}}",
        serde_json::to_string(&error).expect("error serialize")
    )
}

/// Serializes an estimate set. Classes are emitted ascending by registry
/// index — with the fresh per-request registry the server uses, that order
/// (and hence the whole payload) is a pure function of the tally, which is
/// what makes responses byte-identical to in-process calls.
pub fn estimates_json(est: &Estimates, registry: &GraphletRegistry) -> Value {
    let classes: Vec<Value> = est
        .per_graphlet
        .iter()
        .map(|e| {
            json!({
                "graphlet": name(&registry.info(e.index).graphlet),
                "occurrences": e.occurrences,
                "colorful": e.colorful,
                "count": e.count,
                "frequency": e.frequency,
            })
        })
        .collect();
    json!({
        "k": est.k,
        "samples": est.samples,
        "total_count": est.total_count(),
        "classes": classes,
    })
}

/// Serializes an AGS outcome (estimates plus the adaptive-run counters).
pub fn ags_json(res: &AgsResult, registry: &GraphletRegistry) -> Value {
    json!({
        "estimates": estimates_json(&res.estimates, registry),
        "switches": res.switches,
        "covered": res.covered,
        "shape_usage": res.shape_usage.clone(),
    })
}

/// Serializes a canonical-code tally, ascending by code (deterministic —
/// hash-map iteration order never leaks into the payload).
pub fn tally_json(tally: &HashMap<u128, u64>, samples: u64) -> Value {
    let mut rows: Vec<(u128, u64)> = tally.iter().map(|(&c, &n)| (c, n)).collect();
    rows.sort_unstable_by_key(|&(c, _)| c);
    let classes: Vec<Value> = rows
        .into_iter()
        .map(|(code, occurrences)| {
            let graphlet = Graphlet::from_code(code).expect("tally codes are canonical");
            json!({
                "code": format!("{code:#x}"),
                "graphlet": name(&graphlet),
                "occurrences": occurrences,
            })
        })
        .collect();
    json!({"samples": samples, "classes": classes})
}

/// Serializes one manifest entry.
pub fn urn_json(m: &UrnMeta) -> Value {
    json!({
        "id": m.id.to_string(),
        "k": m.key.k,
        "seed": m.key.seed,
        "codec": m.key.codec.to_string(),
        "lambda": m.key.lambda(),
        "status": match m.status {
            BuildStatus::Pending => "pending",
            BuildStatus::Built => "built",
            BuildStatus::Failed => "failed",
        },
        "table_bytes": m.table_bytes,
        "records": m.records,
        "fingerprint": format!("{:016x}", m.key.fingerprint),
    })
}

/// Serializes serving counters, latency quantiles included (log-bucket
/// histogram estimates — see `motivo_obs::Histogram`; `max_us` is exact).
pub fn query_stats_json(s: &QueryStats) -> Value {
    json!({
        "queries": s.queries,
        "cache_hits": s.cache_hits,
        "cache_misses": s.cache_misses,
        "total_latency_ns": s.total_latency.as_nanos() as u64,
        "p50_us": s.p50_latency.as_micros() as u64,
        "p90_us": s.p90_latency.as_micros() as u64,
        "p99_us": s.p99_latency.as_micros() as u64,
        "max_us": s.max_latency.as_micros() as u64,
    })
}

/// Serializes cache counters.
pub fn cache_stats_json(s: &CacheStats) -> Value {
    json!({
        "hits": s.hits,
        "misses": s.misses,
        "evictions": s.evictions,
        "resident_bytes": s.resident_bytes,
        "resident_urns": s.resident_urns,
    })
}

/// Serializes the query-result cache counters (hits/misses/singleflight
/// coalescing — `misses` counts estimator runs through the cache).
pub fn query_cache_stats_json(s: &crate::cache::QueryCacheStats) -> Value {
    json!({
        "hits": s.hits,
        "misses": s.misses,
        "coalesced": s.coalesced,
        "evictions": s.evictions,
        "resident_bytes": s.resident_bytes,
        "resident_entries": s.resident_entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::from_str;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"type\":\"Ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&b"{\"type\":\"Ping\"}"[..])
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7); // header + half the payload
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn requests_parse_with_defaults() {
        let req = Request::parse(&from_str(r#"{"type":"ListUrns"}"#).unwrap()).unwrap();
        assert_eq!(req, Request::ListUrns);

        let v = from_str(r#"{"id":7,"type":"NaiveEstimates","urn":"urn-3","seed":9}"#).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        let req = Request::parse(&v).unwrap();
        assert_eq!(
            req,
            Request::NaiveEstimates {
                urn: UrnId(3),
                samples: 100_000,
                seed: 9,
                threads: 0,
            }
        );

        let v = from_str(r#"{"type":"Build","graph":"g.mtvg","k":5,"codec":"succinct"}"#).unwrap();
        let req = Request::parse(&v).unwrap();
        assert_eq!(
            req,
            Request::Build {
                graph: "g.mtvg".into(),
                k: 5,
                seed: 0,
                lambda: None,
                codec: RecordCodec::Succinct,
                wait: false,
            }
        );
    }

    #[test]
    fn replication_requests_parse() {
        let parse = |doc: &str| Request::parse(&from_str(doc).unwrap()).unwrap();
        assert_eq!(
            parse(r#"{"type":"ReplFetch","replica":"r1","offset":96,"prefix_crc":7,"log_id":12}"#),
            Request::ReplFetch {
                replica: "r1".into(),
                offset: 96,
                prefix_crc: 7,
                log_id: 12,
            }
        );
        assert_eq!(parse(r#"{"type":"ReplManifest"}"#), Request::ReplManifest);
        assert_eq!(
            parse(r#"{"type":"ReplFiles","urn":3}"#),
            Request::ReplFiles {
                target: ReplTarget::Urn(UrnId(3)),
                replica: None,
            }
        );
        assert_eq!(
            parse(
                r#"{"type":"ReplFile","graph":"00ff00ff00ff00ff","name":"level-2.mtvt","offset":1024,"replica":"r2"}"#
            ),
            Request::ReplFile {
                target: ReplTarget::Graph(0x00ff00ff00ff00ff),
                name: "level-2.mtvt".into(),
                offset: 1024,
                replica: Some("r2".into()),
            }
        );
        assert_eq!(parse(r#"{"type":"ReplStatus"}"#), Request::ReplStatus);
        assert_eq!(parse(r#"{"type":"Promote"}"#), Request::Promote);
        // Replication responses depend on mutable server state: never cached.
        for doc in [
            r#"{"type":"ReplManifest"}"#,
            r#"{"type":"ReplStatus"}"#,
            r#"{"type":"ReplFiles","urn":0}"#,
        ] {
            assert_eq!(parse(doc).cache_key(1), None, "{doc}");
        }
    }

    #[test]
    fn bad_replication_requests_are_rejected() {
        for (doc, needle) in [
            (r#"{"type":"ReplFetch","offset":0}"#, "`replica`"),
            (
                r#"{"type":"ReplFetch","replica":"r","prefix_crc":4294967296}"#,
                "32 bits",
            ),
            (r#"{"type":"ReplFiles"}"#, "exactly one"),
            (
                r#"{"type":"ReplFiles","urn":0,"graph":"00"}"#,
                "exactly one",
            ),
            (r#"{"type":"ReplFiles","graph":"zz"}"#, "fingerprint"),
            (r#"{"type":"ReplFile","urn":0}"#, "`name`"),
        ] {
            let err = Request::parse(&from_str(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        for (doc, needle) in [
            (r#"{"no_type":1}"#, "type"),
            (r#"{"type":"Teleport"}"#, "unknown request type"),
            (r#"{"type":"NaiveEstimates"}"#, "`urn`"),
            (r#"{"type":"NaiveEstimates","urn":-3}"#, "`urn`"),
            (r#"{"type":"Sample","urn":0,"samples":"many"}"#, "`samples`"),
            (r#"{"type":"Build","graph":"g","k":1}"#, "`k`"),
            (r#"{"type":"Build","k":4}"#, "`graph`"),
            (
                r#"{"type":"Build","graph":"g","k":4,"codec":"zip"}"#,
                "codec",
            ),
        ] {
            let err = Request::parse(&from_str(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn batch_parses_and_keeps_subrequests_raw() {
        let v = from_str(
            r#"{"id":1,"type":"Batch","requests":[{"type":"Ping"},{"type":"Nope"},{"bad":0}]}"#,
        )
        .unwrap();
        let Request::Batch(subs) = Request::parse(&v).unwrap() else {
            panic!("expected Batch");
        };
        // Sub-documents are raw: the malformed ones parse later, into
        // per-sub-request error envelopes.
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0].get("type").unwrap().as_str(), Some("Ping"));

        let err = Request::parse(&from_str(r#"{"type":"Batch"}"#).unwrap()).unwrap_err();
        assert!(err.contains("requests"), "{err}");
        let err =
            Request::parse(&from_str(r#"{"type":"Batch","requests":3}"#).unwrap()).unwrap_err();
        assert!(err.contains("array"), "{err}");
    }

    #[test]
    fn oversized_batch_is_rejected() {
        let doc = format!(
            r#"{{"type":"Batch","requests":[{}]}}"#,
            vec![r#"{"type":"Ping"}"#; MAX_BATCH + 1].join(",")
        );
        let err = Request::parse(&from_str(&doc).unwrap()).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn cache_keys_are_canonical_and_ignore_threads_and_id() {
        let parse = |doc: &str| Request::parse(&from_str(doc).unwrap()).unwrap();
        // Field order, echoed id, and thread count don't change the key.
        let a = parse(r#"{"id":1,"type":"Sample","urn":0,"samples":500,"seed":3,"threads":1}"#);
        let b =
            parse(r#"{"id":2,"seed":3,"samples":500,"urn":"urn-0","type":"Sample","threads":8}"#);
        assert_eq!(a.cache_key(0xabcd), b.cache_key(0xabcd));
        // Different seed, samples, urn, or fingerprint: different keys.
        let c = parse(r#"{"type":"Sample","urn":0,"samples":500,"seed":4}"#);
        assert_ne!(a.cache_key(0xabcd), c.cache_key(0xabcd));
        assert_ne!(a.cache_key(0xabcd), a.cache_key(0xabce));
        // Ags optional knobs are materialized into the key.
        let d = parse(r#"{"type":"Ags","urn":0,"max_samples":100,"seed":1}"#);
        let e = parse(r#"{"type":"Ags","urn":0,"max_samples":100,"seed":1,"epoch":64}"#);
        assert_ne!(d.cache_key(1), e.cache_key(1));
        // Mutable-state requests are not cacheable.
        assert_eq!(parse(r#"{"type":"ListUrns"}"#).cache_key(1), None);
        assert_eq!(parse(r#"{"type":"Stats"}"#).cache_key(1), None);
        assert_eq!(parse(r#"{"type":"Metrics"}"#).cache_key(1), None);
        assert_eq!(
            parse(r#"{"type":"Batch","requests":[]}"#).cache_key(1),
            None
        );
    }

    /// The splicing fast path must produce the exact bytes the `Value`
    /// path would — otherwise a cached response would differ from a cold
    /// one, breaking the cache-exactness guarantee.
    #[test]
    fn spliced_envelopes_match_value_serialization() {
        for (id, payload) in [
            (json!(3), json!({"x": 1})),
            (json!(null), json!([1, 2, 3])),
            (json!("req-7"), json!({"nested": json!({"deep": true})})),
        ] {
            let id_text = serde_json::to_string(&id).unwrap();
            let payload_text = serde_json::to_string(&payload).unwrap();
            assert_eq!(
                ok_envelope_text(&id_text, &payload_text),
                serde_json::to_string(&ok_response(&id, payload)).unwrap()
            );
            assert_eq!(
                error_envelope_text(&id_text, ErrorKind::Busy, "queue full"),
                serde_json::to_string(&error_response(&id, ErrorKind::Busy, "queue full")).unwrap()
            );
        }
    }

    #[test]
    fn envelopes_have_the_documented_shape() {
        let ok = ok_response(&json!(3), json!({"x": 1}));
        assert_eq!(
            serde_json::to_string(&ok).unwrap(),
            r#"{"id":3,"ok":{"x":1}}"#
        );
        let err = error_response(&json!(null), ErrorKind::Busy, "queue full");
        let text = serde_json::to_string(&err).unwrap();
        assert!(text.contains(r#""kind":"Busy""#), "{text}");
    }
}
