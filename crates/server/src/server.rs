//! The daemon: a TCP accept loop feeding a fixed-size worker pool through
//! a bounded queue, serving the wire protocol of [`crate::proto`] over a
//! shared [`UrnStore`] + [`StoreQuery`].
//!
//! Threading model (all scoped — the serve loop owns every thread it
//! spawns):
//!
//! ```text
//! serve thread ── accept loop
//!   ├─ worker × N ── { lock(rx); recv() } → handle job → write response
//!   └─ reader  × conn ── read frame → parse → try_send(job) ┐
//!                         │ inline: Ping, Shutdown,         │ bounded
//!                         │ Busy / ShuttingDown replies     ▼ queue
//!                         └────────────────────────── crossbeam bounded(N)
//! ```
//!
//! **Backpressure:** the queue is bounded; when it is full the reader
//! answers `Busy` immediately instead of buffering, so overload degrades
//! into fast rejections rather than unbounded memory growth.
//!
//! **Graceful shutdown:** a `Shutdown` request (or [`Server::shutdown`])
//! sets the signal and pokes the listener. The accept loop stops, readers
//! answer `ShuttingDown` to new requests and exit, workers drain every job
//! already accepted into the queue — a request that was not rejected with
//! `Busy` always gets its real response — and the serve thread flushes the
//! store's serving statistics to `server-stats.json` before returning.
//!
//! **Determinism:** request handlers build a fresh [`GraphletRegistry`]
//! per request and never put run-dependent values in payloads, so a seeded
//! request's payload is byte-identical to the equivalent in-process
//! [`StoreQuery`] call at any pool size (the PR 2 seed-splitting guarantee
//! carried across the wire).
//!
//! **Serving throughput:** workers answer through an `Engine` that puts
//! a [`QueryCache`] in front of the estimators — an exact result cache
//! (determinism makes replayed bytes indistinguishable from recomputed
//! ones) with singleflight dedup of concurrent identical requests — and
//! expands `Batch` frames into per-sub-request envelopes in request
//! order, all within the one queue slot the batch occupied.

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use motivo_core::{AgsConfig, BuildConfig, SampleConfig};
use motivo_graph::io as graph_io;
use motivo_graphlet::GraphletRegistry;
use motivo_obs::Obs;
use motivo_store::{BuildStatus, StoreError, StoreQuery, UrnStore};
use serde_json::{json, Value};
use std::io::Read;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use crate::cache::{QueryCache, QueryCacheStats};
use crate::metrics::{KindStats, ServerMetrics};
use crate::proto::{self, ErrorKind, ReplTarget, Request};
use crate::repl::{self, protocol::hex_encode, ReplShared};

/// How often blocked readers re-check the shutdown signal.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// Per-write timeout so one stalled client cannot wedge a pool worker.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default query-result cache budget (`ServeOptions::default`): enough
/// for tens of thousands of typical estimate payloads.
pub const DEFAULT_CACHE_BYTES: u64 = 64 << 20;

/// Server tuning knobs. The zeroed `Default` for the pool knobs means
/// "resolve from the machine": workers from the core count, queue depth
/// from the workers. The cache budget defaults to
/// [`DEFAULT_CACHE_BYTES`]; there `0` means "no result caching"
/// (singleflight dedup of concurrent identical requests stays active).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker-pool size (`0` = available cores, at least 2).
    pub workers: usize,
    /// Bounded queue depth before requests bounce as `Busy`
    /// (`0` = `4 × workers`).
    pub queue_depth: usize,
    /// Byte budget of the deterministic query-result cache
    /// (`0` = disabled).
    pub cache_bytes: u64,
    /// Seconds between periodic metrics snapshots written to
    /// `<store>/metrics-<unix-millis>.json` (`0` = periodic snapshots
    /// off). A final snapshot is always written at shutdown.
    pub snapshot_secs: u64,
    /// Serve as a read-only **replica** of the leader at this address:
    /// spawn a sync thread tailing its journal, refuse `Build` and wire
    /// `Shutdown` with `ReadOnly` until a `Promote` request arrives. The
    /// store should have been opened with
    /// [`motivo_store::UrnStore::open_replica`].
    pub replica_of: Option<String>,
    /// Milliseconds between replication polls once caught up
    /// (`0` = 100 ms). Only meaningful with `replica_of`.
    pub repl_poll_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 0,
            queue_depth: 0,
            cache_bytes: DEFAULT_CACHE_BYTES,
            snapshot_secs: 0,
            replica_of: None,
            repl_poll_ms: 0,
        }
    }
}

impl ServeOptions {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        }
    }

    fn resolved_queue_depth(&self, workers: usize) -> usize {
        if self.queue_depth > 0 {
            self.queue_depth
        } else {
            workers * 4
        }
    }
}

/// What a serve loop did, returned by [`Server::join`].
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Frames parsed as requests (including ones answered `Busy`).
    pub requests: u64,
    /// Requests bounced by backpressure.
    pub busy_rejections: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Final counters of the query-result cache (`misses` = estimator
    /// runs that went through it).
    pub query_cache: QueryCacheStats,
    /// Per-request-kind counters and latency quantiles (ascending by
    /// kind name; kinds that never saw a request are omitted).
    pub per_kind: Vec<KindStats>,
    /// Where the shutdown stat flush landed, if it succeeded.
    pub stats_path: Option<PathBuf>,
    /// Where the final metrics snapshot landed, if it succeeded.
    pub metrics_path: Option<PathBuf>,
}

/// The shutdown signal: a flag plus a self-connect poke that unblocks the
/// accept loop exactly once.
struct Signal {
    flag: AtomicBool,
    poke_addr: SocketAddr,
}

impl Signal {
    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Wake the accept loop; an error just means it wasn't blocked.
            let _ = TcpStream::connect_timeout(&self.poke_addr, Duration::from_secs(1));
        }
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    busy: AtomicU64,
    connections: AtomicU64,
}

/// One accepted request, queued for the pool.
struct Job {
    /// The client's `"id"`, echoed into the response.
    id: Value,
    req: Request,
    writer: Arc<Mutex<TcpStream>>,
    /// When the reader queued this job — the queue-wait side of the
    /// `server.queue_wait` / `server.service` latency split.
    enqueued: Instant,
}

/// A running daemon. Dropping the handle shuts it down and joins it.
pub struct Server {
    addr: SocketAddr,
    signal: Arc<Signal>,
    main: Option<JoinHandle<ServeReport>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port — read it back with
    /// [`Server::addr`]) and starts serving `store` on a background
    /// thread.
    pub fn bind(
        store: Arc<UrnStore>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Poke a loopback route even when bound to a wildcard address.
        let poke_ip = if addr.ip().is_unspecified() {
            IpAddr::V4(Ipv4Addr::LOCALHOST)
        } else {
            addr.ip()
        };
        let signal = Arc::new(Signal {
            flag: AtomicBool::new(false),
            poke_addr: SocketAddr::new(poke_ip, addr.port()),
        });
        let loop_signal = signal.clone();
        let main = std::thread::Builder::new()
            .name("motivo-serve".into())
            .spawn(move || serve_loop(store, listener, loop_signal, opts))?;
        Ok(Server {
            addr,
            signal,
            main: Some(main),
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.signal.trigger();
    }

    /// Blocks until the serve loop exits — on a wire `Shutdown` request or
    /// a [`Server::shutdown`] call — and returns its report.
    pub fn join(mut self) -> ServeReport {
        let main = self.main.take().expect("join called once");
        main.join().expect("serve loop panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(main) = self.main.take() {
            self.signal.trigger();
            let _ = main.join();
        }
    }
}

fn serve_loop(
    store: Arc<UrnStore>,
    listener: TcpListener,
    signal: Arc<Signal>,
    opts: ServeOptions,
) -> ServeReport {
    let workers = opts.resolved_workers();
    let queue_depth = opts.resolved_queue_depth(workers);
    let metrics = ServerMetrics::new(store.obs().clone());
    let repl = match &opts.replica_of {
        Some(leader) => ReplShared::replica(leader.clone(), store.obs().clone()),
        None => ReplShared::leader(store.obs().clone()),
    };
    let engine = Engine {
        query: StoreQuery::new(&store),
        store: &store,
        cache: QueryCache::new(opts.cache_bytes),
        metrics: &metrics,
        repl: &repl,
    };
    let counters = Counters::default();

    std::thread::scope(|s| {
        let (tx, rx) = channel::bounded::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..workers {
            let rx = rx.clone();
            let engine = &engine;
            std::thread::Builder::new()
                .name(format!("motivo-serve-worker-{i}"))
                .spawn_scoped(s, move || worker_loop(&rx, engine))
                .expect("spawn worker");
        }
        if opts.snapshot_secs > 0 {
            let (store, metrics, signal) = (&store, &metrics, &signal);
            let period = Duration::from_secs(opts.snapshot_secs);
            std::thread::Builder::new()
                .name("motivo-serve-snapshot".into())
                .spawn_scoped(s, move || {
                    let mut last = Instant::now();
                    while !signal.is_set() {
                        std::thread::sleep(POLL_INTERVAL);
                        if last.elapsed() >= period {
                            last = Instant::now();
                            if let Err(e) = write_metrics_snapshot(store, metrics) {
                                eprintln!("motivo-serve: metrics snapshot failed: {e}");
                            }
                        }
                    }
                })
                .expect("spawn snapshot writer");
        }
        if let Some(leader) = opts.replica_of.clone() {
            let (store, repl, signal) = (&store, &repl, &signal);
            let poll = Duration::from_millis(if opts.repl_poll_ms > 0 {
                opts.repl_poll_ms
            } else {
                100
            });
            // The replica names itself after its own serve address, so the
            // leader's `ReplStatus` reads like a topology map.
            let name = listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "replica".into());
            std::thread::Builder::new()
                .name("motivo-serve-sync".into())
                .spawn_scoped(s, move || {
                    let sync_opts = repl::replica::SyncOptions { leader, name, poll };
                    repl::replica::sync_loop(store, repl, &sync_opts, &|| signal.is_set());
                })
                .expect("spawn replication sync");
        }

        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) => {
                    if signal.is_set() {
                        break;
                    }
                    eprintln!("motivo-serve: accept failed: {e}");
                    std::thread::sleep(POLL_INTERVAL);
                    continue;
                }
            };
            if signal.is_set() {
                break; // likely the shutdown poke itself
            }
            // Response frames must not sit in Nagle's buffer waiting for
            // an ACK; serving latency is the product here.
            stream.set_nodelay(true).ok();
            counters.connections.fetch_add(1, Ordering::Relaxed);
            let tx = tx.clone();
            let (signal, counters, metrics, repl) = (&signal, &counters, &metrics, &repl);
            std::thread::Builder::new()
                .name("motivo-serve-conn".into())
                .spawn_scoped(s, move || {
                    connection_loop(stream, tx, signal, counters, metrics, repl)
                })
                .expect("spawn connection reader");
        }
        drop(tx); // workers drain the accepted backlog, then exit
    });

    // Every worker and reader has exited; flush serving stats.
    let per_urn: Vec<Value> = engine
        .query
        .per_urn_stats()
        .iter()
        .map(|(id, st)| json!({"id": id.to_string(), "stats": proto::query_stats_json(st)}))
        .collect();
    let report_requests = counters.requests.load(Ordering::Relaxed);
    let report_busy = counters.busy.load(Ordering::Relaxed);
    let report_connections = counters.connections.load(Ordering::Relaxed);
    let query_cache = engine.cache.stats();
    let per_kind = metrics.kind_stats();
    let per_kind_json: Vec<Value> = per_kind
        .iter()
        .map(crate::metrics::kind_stats_json)
        .collect();
    let body = json!({
        "requests": report_requests,
        "busy_rejections": report_busy,
        "connections": report_connections,
        "total": proto::query_stats_json(&engine.query.total_stats()),
        "per_urn": per_urn,
        "per_kind": per_kind_json,
        "cache": proto::cache_stats_json(&store.cache_stats()),
        "query_cache": proto::query_cache_stats_json(&query_cache),
    });
    let text = serde_json::to_string_pretty(&body).expect("stats serialize");
    let stats_path = match store.flush_stats(text.as_bytes()) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("motivo-serve: stat flush failed: {e}");
            None
        }
    };
    let metrics_path = match write_metrics_snapshot(&store, &metrics) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("motivo-serve: metrics snapshot failed: {e}");
            None
        }
    };

    ServeReport {
        requests: report_requests,
        busy_rejections: report_busy,
        connections: report_connections,
        query_cache,
        per_kind,
        stats_path,
        metrics_path,
    }
}

/// Writes the registry's JSON snapshot to `<store>/metrics-<millis>.json`
/// (atomic temp-file + rename, like every store sidecar). The timestamp
/// names the file so successive snapshots are retained, not overwritten.
fn write_metrics_snapshot(
    store: &UrnStore,
    metrics: &ServerMetrics,
) -> Result<PathBuf, StoreError> {
    let millis = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let body = metrics.registry().snapshot_json();
    store.write_sidecar(&format!("metrics-{millis}.json"), body.as_bytes())
}

/// Fills `buf` from `r`, re-checking the shutdown signal on every read
/// timeout. `Ok(false)` means the read should stop without a frame: clean
/// EOF at a frame boundary, or shutdown while blocked.
fn read_full(
    r: &mut TcpStream,
    buf: &mut [u8],
    at_boundary: bool,
    signal: &Signal,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Ok(false)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if signal.is_set() {
                    // Drain policy: a request is "accepted" once its whole
                    // frame arrived; a partially transmitted frame at
                    // shutdown is abandoned with the connection.
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame, honoring the shutdown signal while blocked.
fn read_frame_interruptible(
    r: &mut TcpStream,
    signal: &Signal,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_full(r, &mut len, true, signal)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > proto::MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame of {len} bytes exceeds the {}-byte cap",
                proto::MAX_FRAME
            ),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_full(r, &mut payload, false, signal)? {
        return Ok(None);
    }
    Ok(Some(payload))
}

fn respond(writer: &Mutex<TcpStream>, response: &Value) {
    respond_text(
        writer,
        &serde_json::to_string(response).expect("response serialize"),
    );
}

fn respond_text(writer: &Mutex<TcpStream>, text: &str) {
    let mut stream = writer.lock().expect("connection writer poisoned");
    if let Err(e) = proto::write_frame(&mut *stream, text.as_bytes()) {
        // The client is gone or stalled past the write timeout; responses
        // to a dead connection are droppable by definition.
        eprintln!("motivo-serve: response write failed: {e}");
    }
}

/// Per-connection reader: parses frames, answers `Ping`/`Shutdown` and all
/// error paths inline, and queues real work — never blocking on the queue,
/// so a saturated pool turns into `Busy` replies instead of latency.
fn connection_loop(
    stream: TcpStream,
    tx: Sender<Job>,
    signal: &Signal,
    counters: &Counters,
    metrics: &ServerMetrics,
    repl: &ReplShared,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => {
            let _ = w.set_write_timeout(Some(WRITE_TIMEOUT));
            Arc::new(Mutex::new(w))
        }
        Err(_) => return,
    };
    let mut reader = stream;

    loop {
        let payload = match read_frame_interruptible(&mut reader, signal) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(_) => return, // torn frame / oversize / connection error
        };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        handle_frame(&payload, &writer, &tx, signal, counters, metrics, repl);
        // A reader must not outlive the shutdown signal just because its
        // client keeps sending (Pings and garbage included): its queue
        // sender would keep the workers from ever seeing the channel
        // close, stalling the drain forever. Answer the frame in hand,
        // then exit — workers still answer this connection's accepted
        // requests through the shared writer.
        if signal.is_set() {
            return;
        }
    }
}

/// Handles one frame: answers `Ping`/`Shutdown` and every error inline,
/// queues real work without ever blocking on the queue. Every frame lands
/// in exactly one `server.requests.<kind>` counter — frames that never
/// parse into a request count under the pseudo-kind `Invalid`.
fn handle_frame(
    payload: &[u8],
    writer: &Arc<Mutex<TcpStream>>,
    tx: &Sender<Job>,
    signal: &Signal,
    counters: &Counters,
    metrics: &ServerMetrics,
    repl: &ReplShared,
) {
    let doc = match std::str::from_utf8(payload)
        .map_err(|_| "frame is not UTF-8".to_string())
        .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(msg) => {
            let invalid = metrics.kind("Invalid");
            invalid.requests.inc();
            invalid.errors.inc();
            return respond(
                writer,
                &proto::error_response(&json!(null), ErrorKind::BadRequest, &msg),
            );
        }
    };
    let id = doc.get("id").unwrap_or(json!(null));
    let req = match Request::parse(&doc) {
        Ok(req) => req,
        Err(msg) => {
            let invalid = metrics.kind("Invalid");
            invalid.requests.inc();
            invalid.errors.inc();
            return respond(
                writer,
                &proto::error_response(&id, ErrorKind::BadRequest, &msg),
            );
        }
    };
    let kind = req.kind();
    metrics.kind(kind).requests.inc();

    match req {
        // Answered inline: must work even with a saturated queue.
        Request::Ping => {
            let t0 = Instant::now();
            respond(writer, &proto::ok_response(&id, json!({"pong": true})));
            metrics.record_inline(kind, t0.elapsed());
        }
        Request::Shutdown => {
            let t0 = Instant::now();
            if repl.is_replica() {
                // A replica's lifecycle belongs to its operator: any wire
                // peer reaching a read replica must not be able to take it
                // down. Promotion lifts this along with the write gate.
                metrics.kind(kind).errors.inc();
                respond(
                    writer,
                    &proto::error_response(
                        &id,
                        ErrorKind::ReadOnly,
                        "replica refuses wire shutdown; promote it first or stop its process",
                    ),
                );
            } else {
                respond(
                    writer,
                    &proto::ok_response(&id, json!({"shutting_down": true})),
                );
                signal.trigger();
            }
            metrics.record_inline(kind, t0.elapsed());
        }
        req => {
            if signal.is_set() {
                metrics.kind(kind).errors.inc();
                return respond(
                    writer,
                    &proto::error_response(
                        &id,
                        ErrorKind::ShuttingDown,
                        "server is draining; no new work accepted",
                    ),
                );
            }
            match tx.try_send(Job {
                id: id.clone(),
                req,
                writer: writer.clone(),
                enqueued: Instant::now(),
            }) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    counters.busy.fetch_add(1, Ordering::Relaxed);
                    metrics.kind(kind).errors.inc();
                    respond(
                        writer,
                        &proto::error_response(
                            &job.id,
                            ErrorKind::Busy,
                            "worker queue is full; retry later",
                        ),
                    );
                }
                Err(TrySendError::Disconnected(job)) => {
                    metrics.kind(kind).errors.inc();
                    respond(
                        writer,
                        &proto::error_response(
                            &job.id,
                            ErrorKind::ShuttingDown,
                            "worker pool has shut down",
                        ),
                    );
                }
            }
        }
    }
}

/// Pool worker: multi-consumer over the bounded queue (receivers are
/// single-consumer in std, so workers take turns holding the lock while
/// blocked in `recv`). Exits when every sender is gone **and** the queue
/// is empty — that ordering is the drain guarantee.
fn worker_loop(rx: &Mutex<Receiver<Job>>, engine: &Engine<'_>) {
    loop {
        let job = match rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed and drained
        };
        engine
            .metrics
            .queue_wait
            .record_duration(job.enqueued.elapsed());
        let t0 = Instant::now();
        let (text, is_error) = engine.answer(&job.id, &job.req);
        // Service time is compute time: the response write is excluded so
        // one stalled client can't skew every kind's latency histogram.
        engine
            .metrics
            .record_served(job.req.kind(), t0.elapsed(), is_error);
        respond_text(&job.writer, &text);
    }
}

fn store_err(e: StoreError) -> (ErrorKind, String) {
    (ErrorKind::of_store(&e), e.to_string())
}

/// Byte budget for one batch's assembled `responses` payload: the frame
/// cap minus slack for the outer envelope and for the short per-sub
/// error envelopes that replace sub-responses once the budget is spent
/// (≤ `MAX_BATCH` of them, ~150 bytes each).
const BATCH_PAYLOAD_BUDGET: usize = proto::MAX_FRAME - (512 << 10);

/// Assembles `{"responses":[…]}` from at most `count` sub-response
/// texts, spending at most ~`budget` bytes on real sub-responses. Once
/// the budget is exhausted the iterator is **not** advanced further —
/// sub-requests that could not be answered are not executed — and every
/// remaining slot gets a `BadRequest` envelope telling the client to
/// split the batch. Without this cap a legal batch of large payloads
/// could assemble a frame beyond [`proto::MAX_FRAME`], which the
/// client's own `read_frame` would reject after all the work was done.
fn assemble_batch(count: usize, mut parts: impl Iterator<Item = String>, budget: usize) -> String {
    let mut out = String::from("{\"responses\":[");
    let mut used = 0usize;
    for i in 0..count {
        if i > 0 {
            out.push(',');
        }
        let part = if used <= budget { parts.next() } else { None };
        match part {
            Some(part) if used + part.len() <= budget => {
                used += part.len();
                out.push_str(&part);
            }
            // Either over budget (the just-computed oversized part is
            // dropped; if cacheable it was cached, so a split retry is
            // cheap) or the budget was already spent.
            _ => {
                used = budget + 1;
                out.push_str(&proto::error_envelope_text(
                    "null",
                    ErrorKind::BadRequest,
                    &format!(
                        "batch response exceeds the frame budget at sub-request {i}; \
                         split the batch"
                    ),
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

/// The request-execution layer one serve loop shares across its workers:
/// the store's query front-end plus the deterministic result cache
/// (DESIGN.md §6.5). Responses travel as *text* from here on — a cached
/// payload is spliced into its envelope byte-for-byte, never re-parsed,
/// which is what makes warm responses provably identical to cold ones.
struct Engine<'s> {
    query: StoreQuery<'s>,
    store: &'s UrnStore,
    cache: QueryCache,
    metrics: &'s ServerMetrics,
    repl: &'s ReplShared,
}

impl Engine<'_> {
    /// Answers one queued request, returning the full response envelope
    /// as wire-ready text plus whether it carries an error (what the
    /// worker feeds `server.errors.<kind>`; a batch envelope itself is
    /// never an error — its sub-requests fail individually).
    fn answer(&self, id: &Value, req: &Request) -> (String, bool) {
        let id_text = serde_json::to_string(id).expect("id serialize");
        match req {
            Request::Batch(subs) => {
                // One frame, one worker slot, N sub-responses in request
                // order — each with its own ok/error envelope. Assembly
                // is budgeted: a payload the client's own frame cap would
                // reject must not be built (or computed) at all.
                let payload = assemble_batch(
                    subs.len(),
                    subs.iter().map(|doc| self.answer_sub(doc)),
                    BATCH_PAYLOAD_BUDGET,
                );
                (proto::ok_envelope_text(&id_text, &payload), false)
            }
            req => match self.answer_single(req) {
                Ok(payload) => (proto::ok_envelope_text(&id_text, &payload), false),
                Err((kind, msg)) => (proto::error_envelope_text(&id_text, kind, &msg), true),
            },
        }
    }

    /// Answers one raw sub-request of a batch: parse failures and
    /// disallowed types become this sub-request's error envelope (its own
    /// `id` echoed), leaving its siblings untouched.
    fn answer_sub(&self, doc: &Value) -> String {
        let sub_id = doc.get("id").unwrap_or(json!(null));
        let id_text = serde_json::to_string(&sub_id).expect("id serialize");
        match Request::parse(doc) {
            Err(msg) => proto::error_envelope_text(&id_text, ErrorKind::BadRequest, &msg),
            Ok(Request::Ping) => proto::ok_envelope_text(&id_text, r#"{"pong":true}"#),
            Ok(Request::Shutdown) | Ok(Request::Batch(_)) => proto::error_envelope_text(
                &id_text,
                ErrorKind::BadRequest,
                "this request type is not allowed inside a batch",
            ),
            Ok(req) => match self.answer_single(&req) {
                Ok(payload) => proto::ok_envelope_text(&id_text, &payload),
                Err((kind, msg)) => proto::error_envelope_text(&id_text, kind, &msg),
            },
        }
    }

    /// Produces one request's payload text, through the result cache when
    /// the request is deterministic: an LRU hit replays the exact bytes,
    /// a concurrent duplicate coalesces onto the in-flight leader, and
    /// only a true miss runs the estimator.
    fn answer_single(&self, req: &Request) -> Result<Arc<str>, (ErrorKind, String)> {
        let key = req
            .cached_urn()
            .and_then(|urn| self.query.content_id(urn))
            .and_then(|cid| req.cache_key(cid));
        match key {
            Some(key) => self.cache.serve(&key, || self.compute(req)).0,
            // Unknown urn or uncacheable type: compute directly (the
            // handler produces the right error for the former).
            None => self.compute(req).map(Arc::from),
        }
    }

    fn compute(&self, req: &Request) -> Result<String, (ErrorKind, String)> {
        self.handle(req)
            .map(|v| serde_json::to_string(&v).expect("payload serialize"))
    }

    /// Executes one request against the store and query layer.
    fn handle(&self, req: &Request) -> Result<Value, (ErrorKind, String)> {
        let (query, store) = (&self.query, self.store);
        match req {
            Request::Ping | Request::Shutdown => unreachable!("handled inline by the reader"),
            Request::Batch(_) => unreachable!("expanded by Engine::answer"),
            Request::ListUrns => {
                let urns: Vec<Value> = store.list().iter().map(proto::urn_json).collect();
                Ok(json!({"urns": urns, "graphs": store.graphs().len()}))
            }
            Request::NaiveEstimates {
                urn,
                samples,
                seed,
                threads,
            } => {
                let meta = store
                    .meta(*urn)
                    .ok_or_else(|| store_err(StoreError::UnknownUrn(*urn)))?;
                let mut registry = GraphletRegistry::new(meta.key.k as u8);
                let est = query
                    .naive_estimates(
                        *urn,
                        &mut registry,
                        *samples,
                        &SampleConfig::seeded(*seed)
                            .threads(*threads)
                            .with_obs(Obs::enabled(store.obs().clone())),
                    )
                    .map_err(store_err)?;
                Ok(proto::estimates_json(&est, &registry))
            }
            Request::Ags {
                urn,
                max_samples,
                c_bar,
                epoch,
                idle_limit,
                seed,
                threads,
            } => {
                let meta = store
                    .meta(*urn)
                    .ok_or_else(|| store_err(StoreError::UnknownUrn(*urn)))?;
                let mut cfg = AgsConfig {
                    max_samples: *max_samples,
                    sample: SampleConfig::seeded(*seed)
                        .threads(*threads)
                        .with_obs(Obs::enabled(store.obs().clone())),
                    ..AgsConfig::default()
                };
                if let Some(c_bar) = c_bar {
                    cfg.c_bar = *c_bar;
                }
                if let Some(epoch) = epoch {
                    if *epoch == 0 {
                        return Err((ErrorKind::BadRequest, "`epoch` must be positive".into()));
                    }
                    cfg.epoch = *epoch;
                }
                if let Some(idle_limit) = idle_limit {
                    cfg.idle_limit = *idle_limit;
                }
                let mut registry = GraphletRegistry::new(meta.key.k as u8);
                let res = query.ags(*urn, &mut registry, &cfg).map_err(store_err)?;
                Ok(proto::ags_json(&res, &registry))
            }
            Request::Sample {
                urn,
                samples,
                seed,
                threads,
            } => {
                let tally = query
                    .sample_tally(
                        *urn,
                        *samples,
                        &SampleConfig::seeded(*seed)
                            .threads(*threads)
                            .with_obs(Obs::enabled(store.obs().clone())),
                    )
                    .map_err(store_err)?;
                Ok(proto::tally_json(&tally, *samples))
            }
            // Not deterministic (timings, uptime) — and correctly
            // uncacheable: `Request::cache_key` returns `None` for it.
            Request::Metrics => Ok(self.metrics.metrics_json()),
            Request::Stats { urn } => match urn {
                Some(urn) => Ok(json!({
                    "id": urn.to_string(),
                    "stats": proto::query_stats_json(&query.stats(*urn)),
                })),
                None => {
                    let per_urn: Vec<Value> = query
                        .per_urn_stats()
                        .iter()
                        .map(|(id, st)| {
                            json!({"id": id.to_string(), "stats": proto::query_stats_json(st)})
                        })
                        .collect();
                    Ok(json!({
                        "total": proto::query_stats_json(&query.total_stats()),
                        "per_urn": per_urn,
                        "cache": proto::cache_stats_json(&store.cache_stats()),
                        "query_cache": proto::query_cache_stats_json(&self.cache.stats()),
                    }))
                }
            },
            Request::Build {
                graph,
                k,
                seed,
                lambda,
                codec,
                wait,
            } => {
                let loaded = if graph.ends_with(".mtvg") {
                    graph_io::load_binary(graph)
                } else {
                    graph_io::load_edge_list(graph)
                };
                let g = loaded.map_err(|e| {
                    (
                        ErrorKind::BadRequest,
                        format!("cannot load graph {graph}: {e}"),
                    )
                })?;
                let mut cfg = BuildConfig::new(*k).seed(*seed).codec(*codec);
                if let Some(lambda) = lambda {
                    cfg = cfg.biased(*lambda);
                }
                let handle = store.build_or_get(&g, &cfg).map_err(store_err)?;
                if *wait {
                    handle.wait().map_err(store_err)?;
                }
                let status = match store.meta(handle.id()).map(|m| m.status) {
                    Some(BuildStatus::Built) => "built",
                    Some(BuildStatus::Failed) => "failed",
                    _ => "pending",
                };
                Ok(json!({"urn": handle.id().to_string(), "status": status}))
            }
            Request::ReplFetch {
                replica,
                offset,
                prefix_crc,
                log_id,
            } => {
                let seg = store
                    .journal_segment(*offset, *prefix_crc, motivo_store::SEGMENT_MAX_BYTES)
                    .map_err(store_err)?;
                // A prefix mismatch and a lineage (gc) mismatch both mean
                // the same thing to the replica: re-bootstrap.
                let stale = seg.stale || seg.log_id != *log_id;
                self.repl
                    .registry
                    .on_fetch(replica, *offset, seg.leader_len);
                let payloads: Vec<Value> = if stale {
                    Vec::new()
                } else {
                    seg.payloads.iter().map(|p| json!(hex_encode(p))).collect()
                };
                Ok(json!({
                    "payloads": payloads,
                    "leader_len": seg.leader_len,
                    "log_id": seg.log_id,
                    "stale": stale,
                }))
            }
            Request::ReplManifest => {
                let bytes = store.manifest_bytes().map_err(store_err)?;
                Ok(json!({
                    "manifest": hex_encode(&bytes),
                    "log_id": store.log_id().map_err(store_err)?,
                }))
            }
            Request::ReplFiles { target, replica: _ } => {
                let files = match target {
                    ReplTarget::Urn(id) => store.urn_file_list(*id).map_err(store_err)?,
                    ReplTarget::Graph(fp) => store
                        .graph_file_meta(*fp)
                        .map_err(store_err)?
                        .into_iter()
                        .collect(),
                };
                let rows: Vec<Value> = files
                    .iter()
                    .map(|f| json!({"name": f.name, "len": f.len, "crc": f.crc}))
                    .collect();
                Ok(json!({"files": rows}))
            }
            Request::ReplFile {
                target,
                name,
                offset,
                replica,
            } => {
                let (data, total) = match target {
                    ReplTarget::Urn(id) => store
                        .read_urn_file(*id, name, *offset, motivo_store::FILE_CHUNK_BYTES)
                        .map_err(store_err)?,
                    ReplTarget::Graph(fp) => store
                        .read_graph_file(*fp, *offset, motivo_store::FILE_CHUNK_BYTES)
                        .map_err(store_err)?,
                };
                self.repl.registry.on_file(replica.as_deref());
                Ok(json!({"data": hex_encode(&data), "total": total}))
            }
            Request::ReplStatus => {
                let sync = self.repl.sync.lock().expect("sync status poisoned");
                Ok(json!({
                    "role": if self.repl.is_replica() { "replica" } else { "leader" },
                    "offset": store.replication_offset(),
                    "log_id": store.log_id().map_err(store_err)?,
                    "leader": self.repl.leader,
                    "replicas": self.repl.registry.snapshot_json(),
                    "sync": repl::replica::sync_status_json(&sync),
                }))
            }
            Request::Promote => {
                if !self.repl.is_replica() {
                    return Err((
                        ErrorKind::BadRequest,
                        "this server is already a leader".into(),
                    ));
                }
                let swept = store.promote().map_err(store_err)?;
                // Order matters: the store accepts writes before the role
                // flips, never the reverse — a request racing the
                // promotion sees `ReadOnly`, not a half-promoted server.
                self.repl.set_leader();
                self.repl.stop_sync();
                Ok(json!({"promoted": true, "swept": swept}))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_batch_joins_within_budget() {
        let parts = vec![r#"{"ok":1}"#.to_string(), r#"{"ok":2}"#.to_string()];
        let out = assemble_batch(2, parts.into_iter(), 1 << 20);
        assert_eq!(out, r#"{"responses":[{"ok":1},{"ok":2}]}"#);
        assert_eq!(
            assemble_batch(0, std::iter::empty(), 1 << 20),
            r#"{"responses":[]}"#
        );
    }

    /// Once the budget is spent, remaining slots become error envelopes
    /// and — crucially — the iterator is never advanced again, so
    /// unanswerable sub-requests are not executed.
    #[test]
    fn assemble_batch_stops_executing_past_the_budget() {
        let big = format!(r#"{{"ok":"{}"}}"#, "x".repeat(100));
        let parts: Vec<String> = vec![big.clone(), big.clone(), big];
        let mut pulled = 0usize;
        let out = assemble_batch(
            4,
            parts.into_iter().inspect(|_| {
                pulled += 1;
                assert!(pulled <= 2, "sub-request executed past the budget");
            }),
            150,
        );
        // Part 0 fits; part 1 busts the budget (dropped); parts 2 and 3
        // are never pulled. Slots 1..4 carry the split-the-batch error.
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let rs = v.get("responses").unwrap().as_array().unwrap();
        assert_eq!(rs.len(), 4);
        assert!(rs[0].get("ok").is_some());
        for (i, r) in rs.iter().enumerate().skip(1) {
            let err = r.get("error").unwrap_or_else(|| panic!("slot {i}: {r:?}"));
            assert_eq!(err.get("kind").unwrap().as_str(), Some("BadRequest"));
            assert!(
                err.get("message")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .contains("split the batch"),
                "{r:?}"
            );
        }
        assert_eq!(pulled, 2);
    }

    /// The worst case — every slot an error envelope — still fits the
    /// frame cap with the slack chosen for `BATCH_PAYLOAD_BUDGET`.
    #[test]
    fn assemble_batch_worst_case_fits_the_frame() {
        let out = assemble_batch(proto::MAX_BATCH, std::iter::empty(), BATCH_PAYLOAD_BUDGET);
        assert!(
            out.len() < proto::MAX_FRAME - (64 << 10),
            "{} bytes",
            out.len()
        );
    }
}
