//! The daemon: a single-threaded poll-based **reactor** owning every
//! connection, feeding a fixed-size worker pool through a bounded queue,
//! serving the wire protocol of [`crate::proto`] over a shared
//! [`UrnStore`] + [`StoreQuery`].
//!
//! Event model (DESIGN.md §6.2) — the serve thread *is* the reactor; the
//! only other threads are the workers:
//!
//! ```text
//! serve thread ── reactor: epoll over {listener, wakeup pipe, conns}
//!   ├─ accept  ── readiness → non-blocking accept → register conn
//!   ├─ read    ── readiness → FrameReader → parse → try_send(job) ┐
//!   │             inline: Ping, Hello, Shutdown,                  │ bounded
//!   │             Busy / ShuttingDown replies                     ▼ queue
//!   ├─ write   ── readiness → WriteBuf::flush            crossbeam bounded
//!   └─ timers  ── replica sync step, metrics snapshot (queued as jobs)
//! worker × N ──── recv job → Engine::answer → Handback → wake reactor
//! ```
//!
//! Workers never touch sockets: a finished response is handed back to the
//! reactor through the [`Handback`] list plus a wakeup-pipe poke, and the
//! reactor appends it to the connection's [`WriteBuf`]. A connection
//! therefore costs a table entry and two byte buffers — not a thread —
//! which is what lets one server hold thousands of idle connections on a
//! fixed thread count (the `idle_conns_held` CI gate).
//!
//! **Backpressure**, both directions: the job queue is bounded — when it
//! is full the reactor answers `Busy` immediately instead of buffering —
//! and each connection may have at most [`proto::MAX_PIPELINE`] requests
//! in flight before further pipelined frames bounce as `Busy` too. On the
//! write side, a socket that stops accepting bytes parks the response in
//! its `WriteBuf` under write-interest re-registration; a consumer whose
//! backlog passes [`WBUF_CAP`] is dropped as dead.
//!
//! **Graceful shutdown:** a `Shutdown` request (or [`Server::shutdown`])
//! sets the signal and wakes the reactor. The listener is deregistered,
//! reads stop, frames that had already fully arrived are answered
//! `ShuttingDown`, workers drain every job already accepted — a request
//! that was not rejected with `Busy` always gets its real response — and
//! the reactor lingers (bounded by [`WRITE_TIMEOUT`]) until every
//! response byte is flushed, then the serve thread writes the store's
//! serving statistics to `server-stats.json` before returning.
//!
//! **Replication:** a replica runs no dedicated sync thread. Its sync
//! session lives in a [`SyncDriver`] stepped as a timer-driven job on the
//! same worker pool: each step does one fetch/apply round and reports the
//! delay until the next, so tailing the leader shares the pool and the
//! reactor with query serving.
//!
//! **Determinism:** request handlers build a fresh [`GraphletRegistry`]
//! per request and never put run-dependent values in payloads, so a seeded
//! request's payload is byte-identical to the equivalent in-process
//! [`StoreQuery`] call at any pool size (the PR 2 seed-splitting guarantee
//! carried across the wire).
//!
//! **Serving throughput:** workers answer through an `Engine` that puts
//! a [`QueryCache`] in front of the estimators — an exact result cache
//! (determinism makes replayed bytes indistinguishable from recomputed
//! ones) with singleflight dedup of concurrent identical requests — and
//! expands `Batch` frames into per-sub-request envelopes in request
//! order, all within the one queue slot the batch occupied.

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use motivo_core::{AgsConfig, BuildConfig, SampleConfig};
use motivo_graph::io as graph_io;
use motivo_graphlet::GraphletRegistry;
use motivo_obs::Obs;
use motivo_store::{BuildStatus, StoreError, StoreQuery, UrnStore};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use crate::cache::{QueryCache, QueryCacheStats};
use crate::metrics::{KindStats, ServerMetrics};
use crate::proto::{self, ErrorKind, ReplTarget, Request};
use crate::reactor::{self, drain_readable, FrameReader, Interest, Poller, WriteBuf};
use crate::repl::{self, protocol::hex_encode, replica::SyncDriver, ReplShared};

/// Retry delay when a timer job finds the worker queue full, and the
/// backoff after a failed accept.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// How long a draining reactor waits for stalled clients to accept their
/// final response bytes before closing on them.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default query-result cache budget (`ServeOptions::default`): enough
/// for tens of thousands of typical estimate payloads.
pub const DEFAULT_CACHE_BYTES: u64 = 64 << 20;

/// Hard cap on the configured worker-pool size (builder validation).
const MAX_WORKERS: usize = 4096;

/// A connection whose unflushed response backlog passes this is a dead or
/// pathologically slow consumer; it is dropped rather than buffered for.
const WBUF_CAP: usize = 64 << 20;

/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the wakeup pipe's read end.
const TOKEN_WAKER: u64 = 1;
/// First connection token; monotonically increasing, never reused, so a
/// late completion for a dead connection can never hit its successor.
const TOKEN_FIRST_CONN: u64 = 2;

/// Server tuning knobs. Construct through [`ServeOptions::builder`] —
/// the field-struct path is deprecated. The zeroed default for the pool
/// knobs means "resolve from the machine": workers from the core count,
/// queue depth from the workers. The cache budget defaults to
/// [`DEFAULT_CACHE_BYTES`]; there `0` means "no result caching"
/// (singleflight dedup of concurrent identical requests stays active).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker-pool size (`0` = available cores, at least 2).
    #[deprecated(since = "0.10.0", note = "construct via ServeOptions::builder()")]
    pub workers: usize,
    /// Bounded queue depth before requests bounce as `Busy`
    /// (`0` = `4 × workers`).
    #[deprecated(since = "0.10.0", note = "construct via ServeOptions::builder()")]
    pub queue_depth: usize,
    /// Byte budget of the deterministic query-result cache
    /// (`0` = disabled).
    #[deprecated(since = "0.10.0", note = "construct via ServeOptions::builder()")]
    pub cache_bytes: u64,
    /// Seconds between periodic metrics snapshots written to
    /// `<store>/metrics-<unix-millis>.json` (`0` = periodic snapshots
    /// off). A final snapshot is always written at shutdown.
    #[deprecated(since = "0.10.0", note = "construct via ServeOptions::builder()")]
    pub snapshot_secs: u64,
    /// Serve as a read-only **replica** of the leader at this address:
    /// drive a sync session tailing its journal, refuse `Build` and wire
    /// `Shutdown` with `ReadOnly` until a `Promote` request arrives. The
    /// store should have been opened with
    /// [`motivo_store::UrnStore::open_replica`].
    #[deprecated(since = "0.10.0", note = "construct via ServeOptions::builder()")]
    pub replica_of: Option<String>,
    /// Milliseconds between replication polls once caught up
    /// (`0` = 100 ms). Only meaningful with `replica_of`.
    #[deprecated(since = "0.10.0", note = "construct via ServeOptions::builder()")]
    pub repl_poll_ms: u64,
}

#[allow(deprecated)] // the Default impl seeds the builder
impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 0,
            queue_depth: 0,
            cache_bytes: DEFAULT_CACHE_BYTES,
            snapshot_secs: 0,
            replica_of: None,
            repl_poll_ms: 0,
        }
    }
}

#[allow(deprecated)] // internal readers of the deprecated field surface
impl ServeOptions {
    /// Starts a [`ServeOptionsBuilder`] seeded with the defaults.
    pub fn builder() -> ServeOptionsBuilder {
        ServeOptionsBuilder {
            opts: ServeOptions::default(),
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        }
    }

    fn resolved_queue_depth(&self, workers: usize) -> usize {
        if self.queue_depth > 0 {
            self.queue_depth
        } else {
            workers * 4
        }
    }
}

/// Validating builder for [`ServeOptions`] — the supported construction
/// path. Every setter keeps the "0 means resolve from the machine"
/// convention of the underlying knobs; [`ServeOptionsBuilder::build`]
/// rejects combinations a serve loop cannot honor, at configuration time
/// instead of as runtime surprises.
///
/// ```
/// use motivo_server::ServeOptions;
/// let opts = ServeOptions::builder()
///     .workers(2)
///     .queue_depth(64)
///     .build()
///     .unwrap();
/// assert!(ServeOptions::builder()
///     .repl_poll_ms(50) // needs replica_of
///     .build()
///     .is_err());
/// ```
#[derive(Clone, Debug)]
pub struct ServeOptionsBuilder {
    opts: ServeOptions,
}

#[allow(deprecated)] // the builder is the sanctioned writer of the fields
impl ServeOptionsBuilder {
    /// Worker-pool size (`0` = available cores, at least 2).
    pub fn workers(mut self, workers: usize) -> ServeOptionsBuilder {
        self.opts.workers = workers;
        self
    }

    /// Bounded queue depth before requests bounce as `Busy`
    /// (`0` = `4 × workers`).
    pub fn queue_depth(mut self, queue_depth: usize) -> ServeOptionsBuilder {
        self.opts.queue_depth = queue_depth;
        self
    }

    /// Byte budget of the query-result cache (`0` = disabled).
    pub fn cache_bytes(mut self, cache_bytes: u64) -> ServeOptionsBuilder {
        self.opts.cache_bytes = cache_bytes;
        self
    }

    /// Seconds between periodic metrics snapshots (`0` = off).
    pub fn snapshot_secs(mut self, snapshot_secs: u64) -> ServeOptionsBuilder {
        self.opts.snapshot_secs = snapshot_secs;
        self
    }

    /// Serve as a read-only replica of the leader at `leader`.
    pub fn replica_of(mut self, leader: impl Into<String>) -> ServeOptionsBuilder {
        self.opts.replica_of = Some(leader.into());
        self
    }

    /// Milliseconds between replication polls once caught up
    /// (`0` = 100 ms). Requires [`ServeOptionsBuilder::replica_of`].
    pub fn repl_poll_ms(mut self, repl_poll_ms: u64) -> ServeOptionsBuilder {
        self.opts.repl_poll_ms = repl_poll_ms;
        self
    }

    /// Validates and produces the options.
    pub fn build(self) -> Result<ServeOptions, String> {
        let o = &self.opts;
        if o.workers > MAX_WORKERS {
            return Err(format!(
                "workers = {} exceeds the {MAX_WORKERS}-thread cap",
                o.workers
            ));
        }
        if o.workers > 0 && o.queue_depth > 0 && o.queue_depth < o.workers {
            return Err(format!(
                "queue_depth = {} is below workers = {}; a queue shallower than \
                 the pool guarantees idle workers",
                o.queue_depth, o.workers
            ));
        }
        if o.repl_poll_ms > 0 && o.replica_of.is_none() {
            return Err("repl_poll_ms is set but replica_of is not; the poll \
                        interval only applies to a replica's sync session"
                .into());
        }
        Ok(self.opts)
    }
}

/// What a serve loop did, returned by [`Server::join`].
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Frames parsed as requests (including ones answered `Busy`).
    pub requests: u64,
    /// Requests bounced by backpressure (full queue or a connection past
    /// its pipelining cap).
    pub busy_rejections: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Final counters of the query-result cache (`misses` = estimator
    /// runs that went through it).
    pub query_cache: QueryCacheStats,
    /// Per-request-kind counters and latency quantiles (ascending by
    /// kind name; kinds that never saw a request are omitted).
    pub per_kind: Vec<KindStats>,
    /// Where the shutdown stat flush landed, if it succeeded.
    pub stats_path: Option<PathBuf>,
    /// Where the final metrics snapshot landed, if it succeeded.
    pub metrics_path: Option<PathBuf>,
}

/// The shutdown signal: a flag plus the reactor's wakeup pipe, so a
/// trigger from any thread interrupts a blocked poll exactly once.
struct Signal {
    flag: AtomicBool,
    waker: reactor::Waker,
}

impl Signal {
    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            self.waker.wake();
        }
    }
}

/// Serving tallies. Plain integers: only the reactor thread writes them.
#[derive(Default)]
struct Tallies {
    requests: u64,
    busy: u64,
    connections: u64,
}

/// One unit of pool work. Timer-driven work (replica sync, metrics
/// snapshots) rides the same queue as requests so the pool is the only
/// place anything blocks.
enum Job {
    /// An accepted wire request.
    Request {
        /// The connection the response belongs to.
        token: u64,
        /// The client's `"id"`, echoed into the response.
        id: Value,
        req: Request,
        /// When the reactor queued this job — the queue-wait side of the
        /// `server.queue_wait` / `server.service` latency split.
        enqueued: Instant,
    },
    /// One fetch/apply round of the replica's sync session.
    SyncStep,
    /// One periodic metrics snapshot.
    Snapshot,
}

/// What a worker hands back to the reactor when a job finishes.
enum Completion {
    /// A response ready to be queued on its connection's write buffer.
    Response { token: u64, text: String },
    /// The sync step finished; re-arm the sync timer after `delay`.
    SyncDone { delay: Duration },
    SnapshotDone,
}

/// The worker → reactor return path: completed jobs pile up under a
/// mutex and the wakeup pipe interrupts the reactor's poll. Workers
/// never touch sockets — ownership of every fd stays with the reactor.
struct Handback {
    done: Mutex<Vec<Completion>>,
    waker: reactor::Waker,
}

impl Handback {
    fn complete(&self, c: Completion) {
        self.done.lock().expect("handback poisoned").push(c);
        self.waker.wake();
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.done.lock().expect("handback poisoned"))
    }
}

/// One connection's reactor state: the socket plus the read and write
/// halves of its frame state machine.
struct Conn {
    stream: TcpStream,
    frames: FrameReader,
    wbuf: WriteBuf,
    /// The interest set currently registered in the poller, reconciled
    /// against the desired set after every event round.
    registered: Interest,
    /// Requests accepted from this connection whose responses are still
    /// owed — the pipelining counter behind [`proto::MAX_PIPELINE`].
    in_flight: usize,
    /// The peer closed its write side (EOF); what it is still owed gets
    /// flushed, then the connection closes.
    peer_closed: bool,
}

/// A running daemon. Dropping the handle shuts it down and joins it.
pub struct Server {
    addr: SocketAddr,
    signal: Arc<Signal>,
    main: Option<JoinHandle<ServeReport>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port — read it back with
    /// [`Server::addr`]) and starts serving `store` on a background
    /// thread.
    pub fn bind(
        store: Arc<UrnStore>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (waker, wake_rx) = reactor::wake_pair()?;
        let signal = Arc::new(Signal {
            flag: AtomicBool::new(false),
            waker,
        });
        let loop_signal = signal.clone();
        let main = std::thread::Builder::new()
            .name("motivo-serve".into())
            .spawn(move || serve_loop(store, listener, wake_rx, loop_signal, opts))?;
        Ok(Server {
            addr,
            signal,
            main: Some(main),
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.signal.trigger();
    }

    /// Blocks until the serve loop exits — on a wire `Shutdown` request or
    /// a [`Server::shutdown`] call — and returns its report.
    pub fn join(mut self) -> ServeReport {
        let main = self.main.take().expect("join called once");
        main.join().expect("serve loop panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(main) = self.main.take() {
            self.signal.trigger();
            let _ = main.join();
        }
    }
}

#[allow(deprecated)] // reads the pre-builder ServeOptions field surface
fn serve_loop(
    store: Arc<UrnStore>,
    listener: TcpListener,
    wake_rx: reactor::WakeReader,
    signal: Arc<Signal>,
    opts: ServeOptions,
) -> ServeReport {
    let workers = opts.resolved_workers();
    let queue_depth = opts.resolved_queue_depth(workers);
    let metrics = ServerMetrics::new(store.obs().clone());
    let repl = match &opts.replica_of {
        Some(leader) => ReplShared::replica(leader.clone(), store.obs().clone()),
        None => ReplShared::leader(store.obs().clone()),
    };
    let engine = Engine {
        query: StoreQuery::new(&store),
        store: &store,
        cache: QueryCache::new(opts.cache_bytes),
        metrics: &metrics,
        repl: &repl,
    };
    let mut tallies = Tallies::default();
    let handback = Handback {
        done: Mutex::new(Vec::new()),
        waker: signal.waker.clone(),
    };
    let snapshot_period = (opts.snapshot_secs > 0).then(|| Duration::from_secs(opts.snapshot_secs));
    // The replica's sync session is a driver stepped on the worker pool,
    // not a thread. It names itself after its own serve address, so the
    // leader's `ReplStatus` reads like a topology map.
    let sync_driver = opts.replica_of.clone().map(|leader| {
        let name = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "replica".into());
        let poll = Duration::from_millis(if opts.repl_poll_ms > 0 {
            opts.repl_poll_ms
        } else {
            100
        });
        Mutex::new(SyncDriver::new(
            &store,
            &repl,
            repl::replica::SyncOptions { leader, name, poll },
        ))
    });

    std::thread::scope(|s| {
        let (tx, rx) = channel::bounded::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..workers {
            let rx = rx.clone();
            let (engine, handback) = (&engine, &handback);
            let sync = sync_driver.as_ref();
            std::thread::Builder::new()
                .name(format!("motivo-serve-worker-{i}"))
                .spawn_scoped(s, move || worker_loop(&rx, engine, handback, sync))
                .expect("spawn worker");
        }
        reactor_loop(
            listener,
            &wake_rx,
            tx,
            &signal,
            &mut tallies,
            &metrics,
            &repl,
            &handback,
            snapshot_period,
            sync_driver.is_some(),
        );
        // `tx` was consumed by the reactor and dropped when it returned;
        // the workers drain the accepted backlog, then exit.
    });
    if let Some(driver) = &sync_driver {
        driver.lock().expect("sync driver poisoned").finish();
    }

    // Every worker has exited; flush serving stats.
    let per_urn: Vec<Value> = engine
        .query
        .per_urn_stats()
        .iter()
        .map(|(id, st)| json!({"id": id.to_string(), "stats": proto::query_stats_json(st)}))
        .collect();
    let query_cache = engine.cache.stats();
    let per_kind = metrics.kind_stats();
    let per_kind_json: Vec<Value> = per_kind
        .iter()
        .map(crate::metrics::kind_stats_json)
        .collect();
    let body = json!({
        "requests": tallies.requests,
        "busy_rejections": tallies.busy,
        "connections": tallies.connections,
        "total": proto::query_stats_json(&engine.query.total_stats()),
        "per_urn": per_urn,
        "per_kind": per_kind_json,
        "cache": proto::cache_stats_json(&store.cache_stats()),
        "query_cache": proto::query_cache_stats_json(&query_cache),
    });
    let text = serde_json::to_string_pretty(&body).expect("stats serialize");
    let stats_path = match store.flush_stats(text.as_bytes()) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("motivo-serve: stat flush failed: {e}");
            None
        }
    };
    let metrics_path = match write_metrics_snapshot(&store, &metrics) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("motivo-serve: metrics snapshot failed: {e}");
            None
        }
    };

    ServeReport {
        requests: tallies.requests,
        busy_rejections: tallies.busy,
        connections: tallies.connections,
        query_cache,
        per_kind,
        stats_path,
        metrics_path,
    }
}

/// Writes the registry's JSON snapshot to `<store>/metrics-<millis>.json`
/// (atomic temp-file + rename, like every store sidecar). The timestamp
/// names the file so successive snapshots are retained, not overwritten.
fn write_metrics_snapshot(
    store: &UrnStore,
    metrics: &ServerMetrics,
) -> Result<PathBuf, StoreError> {
    let millis = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let body = metrics.registry().snapshot_json();
    store.write_sidecar(&format!("metrics-{millis}.json"), body.as_bytes())
}

/// The readiness loop. Owns the listener, the wakeup pipe's read end, and
/// every connection; returns once a drain completes (every accepted job
/// answered and flushed, or [`WRITE_TIMEOUT`] elapsed on the stragglers).
#[allow(clippy::too_many_arguments)] // the reactor is the meeting point of every serve-loop concern
fn reactor_loop(
    listener: TcpListener,
    wake_rx: &reactor::WakeReader,
    tx: Sender<Job>,
    signal: &Signal,
    tallies: &mut Tallies,
    metrics: &ServerMetrics,
    repl: &ReplShared,
    handback: &Handback,
    snapshot_period: Option<Duration>,
    sync: bool,
) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("motivo-serve: cannot create poller: {e}");
            return;
        }
    };
    if let Err(e) = listener
        .set_nonblocking(true)
        .and_then(|()| poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ))
        .and_then(|()| poller.add(wake_rx.fd(), TOKEN_WAKER, Interest::READ))
    {
        eprintln!("motivo-serve: cannot register reactor fds: {e}");
        return;
    }

    let mut events: Vec<reactor::Event> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    // Jobs queued minus completions taken — the drain's exit ledger.
    let mut outstanding: u64 = 0;
    let mut draining = false;
    let mut drain_deadline: Option<Instant> = None;
    let mut tx = Some(tx);
    let mut listener = Some(listener);

    let now = Instant::now();
    let mut next_sync = sync.then_some(now);
    let mut sync_inflight = false;
    let mut next_snapshot = snapshot_period.map(|p| now + p);
    let mut snapshot_inflight = false;

    loop {
        let now = Instant::now();

        // Fire due timers by queueing jobs; a full queue retries shortly.
        if !draining {
            if repl.sync_stopped() {
                next_sync = None; // promotion: the sync timer dies with the session
            }
            if let Some(due) = next_sync {
                if due <= now && !sync_inflight {
                    next_sync = match tx.as_ref().map(|t| t.try_send(Job::SyncStep)) {
                        Some(Ok(())) => {
                            sync_inflight = true;
                            outstanding += 1;
                            None // re-armed by the SyncDone completion
                        }
                        _ => Some(now + POLL_INTERVAL),
                    };
                }
            }
            if let Some(due) = next_snapshot {
                if due <= now && !snapshot_inflight {
                    next_snapshot = match tx.as_ref().map(|t| t.try_send(Job::Snapshot)) {
                        Some(Ok(())) => {
                            snapshot_inflight = true;
                            outstanding += 1;
                            snapshot_period.map(|p| now + p)
                        }
                        _ => Some(now + POLL_INTERVAL),
                    };
                }
            }
        }

        // Sleep until readiness, a wakeup, or the nearest timer.
        let mut timeout = Duration::from_secs(1);
        for t in [next_sync, next_snapshot, drain_deadline].into_iter().flatten() {
            timeout = timeout.min(t.saturating_duration_since(now));
        }
        if let Err(e) = poller.wait(&mut events, Some(timeout)) {
            eprintln!("motivo-serve: poll failed: {e}");
            std::thread::sleep(POLL_INTERVAL); // don't spin on a broken poller
        }

        for ev in &events {
            match ev.token {
                TOKEN_WAKER => wake_rx.drain(),
                TOKEN_LISTENER => {
                    let Some(l) = listener.as_ref() else { continue };
                    loop {
                        match l.accept() {
                            Ok((stream, _)) => {
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                // Response frames must not sit in Nagle's
                                // buffer waiting for an ACK; serving
                                // latency is the product here.
                                stream.set_nodelay(true).ok();
                                tallies.connections += 1;
                                let token = next_token;
                                next_token += 1;
                                if poller
                                    .add(stream.as_raw_fd(), token, Interest::READ)
                                    .is_err()
                                {
                                    continue; // kernel refused; drop the connection
                                }
                                conns.insert(
                                    token,
                                    Conn {
                                        stream,
                                        frames: FrameReader::new(),
                                        wbuf: WriteBuf::new(),
                                        registered: Interest::READ,
                                        in_flight: 0,
                                        peer_closed: false,
                                    },
                                );
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => {
                                eprintln!("motivo-serve: accept failed: {e}");
                                break;
                            }
                        }
                    }
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let fd = conn.stream.as_raw_fd();
                    let mut failed = false;
                    if ev.readable && !conn.peer_closed && !draining {
                        match drain_readable(&mut conn.stream, &mut scratch, &mut conn.frames) {
                            Ok(eof) => {
                                loop {
                                    match conn.frames.next_frame() {
                                        Ok(Some(payload)) => {
                                            tallies.requests += 1;
                                            handle_frame(
                                                &payload,
                                                token,
                                                conn,
                                                tx.as_ref(),
                                                signal,
                                                metrics,
                                                repl,
                                                tallies,
                                                &mut outstanding,
                                            );
                                        }
                                        Ok(None) => break,
                                        // Oversized announcement: protocol
                                        // error, fatal to the connection.
                                        Err(_) => {
                                            failed = true;
                                            break;
                                        }
                                    }
                                }
                                if eof {
                                    conn.peer_closed = true;
                                }
                            }
                            Err(_) => failed = true,
                        }
                    }
                    if !failed && ev.writable && !conn.wbuf.is_empty() {
                        failed = conn.wbuf.flush(&mut conn.stream).is_err();
                    }
                    if failed {
                        let _ = poller.remove(fd);
                        conns.remove(&token);
                    }
                }
            }
        }

        // Collect finished jobs from the workers.
        for c in handback.take() {
            match c {
                Completion::Response { token, text } => {
                    outstanding -= 1;
                    if let Some(conn) = conns.get_mut(&token) {
                        conn.in_flight -= 1;
                        conn.wbuf.push_frame(text.as_bytes());
                    }
                    // A vanished token means the connection died first;
                    // its response is droppable by definition.
                }
                Completion::SyncDone { delay } => {
                    outstanding -= 1;
                    sync_inflight = false;
                    if !draining && !repl.sync_stopped() {
                        next_sync = Some(Instant::now() + delay);
                    }
                }
                Completion::SnapshotDone => {
                    outstanding -= 1;
                    snapshot_inflight = false;
                }
            }
        }

        // Drain transition: stop accepting and reading, answer what had
        // already fully arrived, let the pool finish what it accepted.
        if signal.is_set() && !draining {
            draining = true;
            drain_deadline = Some(Instant::now() + WRITE_TIMEOUT);
            if let Some(l) = listener.take() {
                let _ = poller.remove(l.as_raw_fd());
            }
            next_sync = None;
            next_snapshot = None;
            for (&token, conn) in conns.iter_mut() {
                while let Ok(Some(payload)) = conn.frames.next_frame() {
                    // Routed to `ShuttingDown` (or answered inline) by the
                    // signal check inside — a frame that fully arrived
                    // before the drain is answered, never ignored.
                    tallies.requests += 1;
                    handle_frame(
                        &payload,
                        token,
                        conn,
                        None,
                        signal,
                        metrics,
                        repl,
                        tallies,
                        &mut outstanding,
                    );
                }
            }
            tx = None; // workers exit once the accepted backlog drains
        }

        // Per-connection maintenance: flush what the completions queued,
        // drop dead consumers, close what is finished, reconcile interest.
        conns.retain(|&token, conn| {
            if !conn.wbuf.is_empty() && conn.wbuf.flush(&mut conn.stream).is_err() {
                let _ = poller.remove(conn.stream.as_raw_fd());
                return false;
            }
            if conn.wbuf.pending() > WBUF_CAP {
                // A consumer this far behind is indistinguishable from a
                // dead one; buffering further only converts its stall
                // into our memory.
                let _ = poller.remove(conn.stream.as_raw_fd());
                return false;
            }
            if (draining || conn.peer_closed) && conn.in_flight == 0 && conn.wbuf.is_empty() {
                let _ = poller.remove(conn.stream.as_raw_fd());
                return false;
            }
            let desired = Interest {
                readable: !draining && !conn.peer_closed,
                writable: !conn.wbuf.is_empty(),
            };
            if desired != conn.registered
                && poller
                    .modify(conn.stream.as_raw_fd(), token, desired)
                    .is_ok()
            {
                conn.registered = desired;
            }
            true
        });

        if draining {
            if outstanding == 0 && conns.is_empty() {
                break; // every accepted job answered and flushed
            }
            if drain_deadline.is_some_and(|d| now >= d) {
                break; // stalled clients cannot wedge shutdown
            }
        }
    }
}

/// Queues one response document on the connection's write buffer.
fn push_response(conn: &mut Conn, response: &Value) {
    let text = serde_json::to_string(response).expect("response serialize");
    conn.wbuf.push_frame(text.as_bytes());
}

/// Handles one frame on the reactor thread: answers `Ping`, `Hello`,
/// `Shutdown`, and every error path inline, queues real work without ever
/// blocking on the queue. Every frame lands in exactly one
/// `server.requests.<kind>` counter — frames that never parse into a
/// request count under the pseudo-kind `Invalid`.
#[allow(clippy::too_many_arguments)] // one frame touches every reactor concern
fn handle_frame(
    payload: &[u8],
    token: u64,
    conn: &mut Conn,
    tx: Option<&Sender<Job>>,
    signal: &Signal,
    metrics: &ServerMetrics,
    repl: &ReplShared,
    tallies: &mut Tallies,
    outstanding: &mut u64,
) {
    let doc = match std::str::from_utf8(payload)
        .map_err(|_| "frame is not UTF-8".to_string())
        .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(msg) => {
            let invalid = metrics.kind("Invalid");
            invalid.requests.inc();
            invalid.errors.inc();
            return push_response(
                conn,
                &proto::error_response(&json!(null), ErrorKind::BadRequest, &msg),
            );
        }
    };
    let id = doc.get("id").unwrap_or(json!(null));
    let req = match Request::parse(&doc) {
        Ok(req) => req,
        Err(msg) => {
            let invalid = metrics.kind("Invalid");
            invalid.requests.inc();
            invalid.errors.inc();
            return push_response(conn, &proto::error_response(&id, ErrorKind::BadRequest, &msg));
        }
    };
    let kind = req.kind();
    metrics.kind(kind).requests.inc();

    match req {
        // Answered inline: must work even with a saturated queue.
        Request::Ping => {
            let t0 = Instant::now();
            push_response(conn, &proto::ok_response(&id, json!({"pong": true})));
            metrics.record_inline(kind, t0.elapsed());
        }
        // The handshake is inline for the same reason: a client probing
        // what this server speaks deserves an answer before the pool does.
        Request::Hello { .. } => {
            let t0 = Instant::now();
            push_response(conn, &proto::ok_response(&id, proto::hello_payload()));
            metrics.record_inline(kind, t0.elapsed());
        }
        Request::Shutdown => {
            let t0 = Instant::now();
            if repl.is_replica() {
                // A replica's lifecycle belongs to its operator: any wire
                // peer reaching a read replica must not be able to take it
                // down. Promotion lifts this along with the write gate.
                metrics.kind(kind).errors.inc();
                push_response(
                    conn,
                    &proto::error_response(
                        &id,
                        ErrorKind::ReadOnly,
                        "replica refuses wire shutdown; promote it first or stop its process",
                    ),
                );
            } else {
                push_response(
                    conn,
                    &proto::ok_response(&id, json!({"shutting_down": true})),
                );
                signal.trigger();
            }
            metrics.record_inline(kind, t0.elapsed());
        }
        req => {
            if signal.is_set() || tx.is_none() {
                metrics.kind(kind).errors.inc();
                return push_response(
                    conn,
                    &proto::error_response(
                        &id,
                        ErrorKind::ShuttingDown,
                        "server is draining; no new work accepted",
                    ),
                );
            }
            if conn.in_flight >= proto::MAX_PIPELINE {
                tallies.busy += 1;
                metrics.kind(kind).errors.inc();
                return push_response(
                    conn,
                    &proto::error_response(
                        &id,
                        ErrorKind::Busy,
                        &format!(
                            "pipelining cap of {} in-flight requests reached; \
                             read responses before sending more",
                            proto::MAX_PIPELINE
                        ),
                    ),
                );
            }
            match tx.expect("checked above").try_send(Job::Request {
                token,
                id: id.clone(),
                req,
                enqueued: Instant::now(),
            }) {
                Ok(()) => {
                    *outstanding += 1;
                    conn.in_flight += 1;
                }
                Err(TrySendError::Full(_)) => {
                    tallies.busy += 1;
                    metrics.kind(kind).errors.inc();
                    push_response(
                        conn,
                        &proto::error_response(
                            &id,
                            ErrorKind::Busy,
                            "worker queue is full; retry later",
                        ),
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    metrics.kind(kind).errors.inc();
                    push_response(
                        conn,
                        &proto::error_response(
                            &id,
                            ErrorKind::ShuttingDown,
                            "worker pool has shut down",
                        ),
                    );
                }
            }
        }
    }
}

/// Pool worker: multi-consumer over the bounded queue (receivers are
/// single-consumer in std, so workers take turns holding the lock while
/// blocked in `recv`). Exits when every sender is gone **and** the queue
/// is empty — that ordering is the drain guarantee. Results go back to
/// the reactor through the handback, never to a socket.
fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    engine: &Engine<'_>,
    handback: &Handback,
    sync: Option<&Mutex<SyncDriver<'_>>>,
) {
    loop {
        let job = match rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed and drained
        };
        match job {
            Job::Request {
                token,
                id,
                req,
                enqueued,
            } => {
                engine
                    .metrics
                    .queue_wait
                    .record_duration(enqueued.elapsed());
                let t0 = Instant::now();
                let (text, is_error) = engine.answer(&id, &req);
                // Service time is compute time: the response write belongs
                // to the reactor, so one stalled client can't skew every
                // kind's latency histogram.
                engine
                    .metrics
                    .record_served(req.kind(), t0.elapsed(), is_error);
                handback.complete(Completion::Response { token, text });
            }
            Job::SyncStep => {
                let delay = match sync {
                    Some(driver) => driver.lock().expect("sync driver poisoned").step(),
                    None => POLL_INTERVAL, // a leader never queues SyncStep
                };
                handback.complete(Completion::SyncDone { delay });
            }
            Job::Snapshot => {
                if let Err(e) = write_metrics_snapshot(engine.store, engine.metrics) {
                    eprintln!("motivo-serve: metrics snapshot failed: {e}");
                }
                handback.complete(Completion::SnapshotDone);
            }
        }
    }
}

fn store_err(e: StoreError) -> (ErrorKind, String) {
    (ErrorKind::of_store(&e), e.to_string())
}

/// Byte budget for one batch's assembled `responses` payload: the frame
/// cap minus slack for the outer envelope and for the short per-sub
/// error envelopes that replace sub-responses once the budget is spent
/// (≤ `MAX_BATCH` of them, ~150 bytes each).
const BATCH_PAYLOAD_BUDGET: usize = proto::MAX_FRAME - (512 << 10);

/// Assembles `{"responses":[…]}` from at most `count` sub-response
/// texts, spending at most ~`budget` bytes on real sub-responses. Once
/// the budget is exhausted the iterator is **not** advanced further —
/// sub-requests that could not be answered are not executed — and every
/// remaining slot gets a `BadRequest` envelope telling the client to
/// split the batch. Without this cap a legal batch of large payloads
/// could assemble a frame beyond [`proto::MAX_FRAME`], which the
/// client's own `read_frame` would reject after all the work was done.
fn assemble_batch(count: usize, mut parts: impl Iterator<Item = String>, budget: usize) -> String {
    let mut out = String::from("{\"responses\":[");
    let mut used = 0usize;
    for i in 0..count {
        if i > 0 {
            out.push(',');
        }
        let part = if used <= budget { parts.next() } else { None };
        match part {
            Some(part) if used + part.len() <= budget => {
                used += part.len();
                out.push_str(&part);
            }
            // Either over budget (the just-computed oversized part is
            // dropped; if cacheable it was cached, so a split retry is
            // cheap) or the budget was already spent.
            _ => {
                used = budget + 1;
                out.push_str(&proto::error_envelope_text(
                    "null",
                    ErrorKind::BadRequest,
                    &format!(
                        "batch response exceeds the frame budget at sub-request {i}; \
                         split the batch"
                    ),
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

/// The request-execution layer one serve loop shares across its workers:
/// the store's query front-end plus the deterministic result cache
/// (DESIGN.md §6.5). Responses travel as *text* from here on — a cached
/// payload is spliced into its envelope byte-for-byte, never re-parsed,
/// which is what makes warm responses provably identical to cold ones.
struct Engine<'s> {
    query: StoreQuery<'s>,
    store: &'s UrnStore,
    cache: QueryCache,
    metrics: &'s ServerMetrics,
    repl: &'s ReplShared,
}

impl Engine<'_> {
    /// Answers one queued request, returning the full response envelope
    /// as wire-ready text plus whether it carries an error (what the
    /// worker feeds `server.errors.<kind>`; a batch envelope itself is
    /// never an error — its sub-requests fail individually).
    fn answer(&self, id: &Value, req: &Request) -> (String, bool) {
        let id_text = serde_json::to_string(id).expect("id serialize");
        match req {
            Request::Batch(subs) => {
                // One frame, one worker slot, N sub-responses in request
                // order — each with its own ok/error envelope. Assembly
                // is budgeted: a payload the client's own frame cap would
                // reject must not be built (or computed) at all.
                let payload = assemble_batch(
                    subs.len(),
                    subs.iter().map(|doc| self.answer_sub(doc)),
                    BATCH_PAYLOAD_BUDGET,
                );
                (proto::ok_envelope_text(&id_text, &payload), false)
            }
            req => match self.answer_single(req) {
                Ok(payload) => (proto::ok_envelope_text(&id_text, &payload), false),
                Err((kind, msg)) => (proto::error_envelope_text(&id_text, kind, &msg), true),
            },
        }
    }

    /// Answers one raw sub-request of a batch: parse failures and
    /// disallowed types become this sub-request's error envelope (its own
    /// `id` echoed), leaving its siblings untouched.
    fn answer_sub(&self, doc: &Value) -> String {
        let sub_id = doc.get("id").unwrap_or(json!(null));
        let id_text = serde_json::to_string(&sub_id).expect("id serialize");
        match Request::parse(doc) {
            Err(msg) => proto::error_envelope_text(&id_text, ErrorKind::BadRequest, &msg),
            Ok(Request::Ping) => proto::ok_envelope_text(&id_text, r#"{"pong":true}"#),
            Ok(Request::Hello { .. }) => proto::ok_envelope_text(
                &id_text,
                &serde_json::to_string(&proto::hello_payload()).expect("hello serialize"),
            ),
            Ok(Request::Shutdown) | Ok(Request::Batch(_)) => proto::error_envelope_text(
                &id_text,
                ErrorKind::BadRequest,
                "this request type is not allowed inside a batch",
            ),
            Ok(req) => match self.answer_single(&req) {
                Ok(payload) => proto::ok_envelope_text(&id_text, &payload),
                Err((kind, msg)) => proto::error_envelope_text(&id_text, kind, &msg),
            },
        }
    }

    /// Produces one request's payload text, through the result cache when
    /// the request is deterministic: an LRU hit replays the exact bytes,
    /// a concurrent duplicate coalesces onto the in-flight leader, and
    /// only a true miss runs the estimator.
    fn answer_single(&self, req: &Request) -> Result<Arc<str>, (ErrorKind, String)> {
        let key = req
            .cached_urn()
            .and_then(|urn| self.query.content_id(urn))
            .and_then(|cid| req.cache_key(cid));
        match key {
            Some(key) => self.cache.serve(&key, || self.compute(req)).0,
            // Unknown urn or uncacheable type: compute directly (the
            // handler produces the right error for the former).
            None => self.compute(req).map(Arc::from),
        }
    }

    fn compute(&self, req: &Request) -> Result<String, (ErrorKind, String)> {
        self.handle(req)
            .map(|v| serde_json::to_string(&v).expect("payload serialize"))
    }

    /// Executes one request against the store and query layer.
    fn handle(&self, req: &Request) -> Result<Value, (ErrorKind, String)> {
        let (query, store) = (&self.query, self.store);
        match req {
            Request::Ping | Request::Hello { .. } | Request::Shutdown => {
                unreachable!("handled inline by the reactor")
            }
            Request::Batch(_) => unreachable!("expanded by Engine::answer"),
            Request::ListUrns => {
                let urns: Vec<Value> = store.list().iter().map(proto::urn_json).collect();
                Ok(json!({"urns": urns, "graphs": store.graphs().len()}))
            }
            Request::NaiveEstimates {
                urn,
                samples,
                seed,
                threads,
            } => {
                let meta = store
                    .meta(*urn)
                    .ok_or_else(|| store_err(StoreError::UnknownUrn(*urn)))?;
                let mut registry = GraphletRegistry::new(meta.key.k as u8);
                let est = query
                    .naive_estimates(
                        *urn,
                        &mut registry,
                        *samples,
                        &SampleConfig::seeded(*seed)
                            .threads(*threads)
                            .with_obs(Obs::enabled(store.obs().clone())),
                    )
                    .map_err(store_err)?;
                Ok(proto::estimates_json(&est, &registry))
            }
            Request::Ags {
                urn,
                max_samples,
                c_bar,
                epoch,
                idle_limit,
                seed,
                threads,
            } => {
                let meta = store
                    .meta(*urn)
                    .ok_or_else(|| store_err(StoreError::UnknownUrn(*urn)))?;
                let mut cfg = AgsConfig {
                    max_samples: *max_samples,
                    sample: SampleConfig::seeded(*seed)
                        .threads(*threads)
                        .with_obs(Obs::enabled(store.obs().clone())),
                    ..AgsConfig::default()
                };
                if let Some(c_bar) = c_bar {
                    cfg.c_bar = *c_bar;
                }
                if let Some(epoch) = epoch {
                    if *epoch == 0 {
                        return Err((ErrorKind::BadRequest, "`epoch` must be positive".into()));
                    }
                    cfg.epoch = *epoch;
                }
                if let Some(idle_limit) = idle_limit {
                    cfg.idle_limit = *idle_limit;
                }
                let mut registry = GraphletRegistry::new(meta.key.k as u8);
                let res = query.ags(*urn, &mut registry, &cfg).map_err(store_err)?;
                Ok(proto::ags_json(&res, &registry))
            }
            Request::Sample {
                urn,
                samples,
                seed,
                threads,
            } => {
                let tally = query
                    .sample_tally(
                        *urn,
                        *samples,
                        &SampleConfig::seeded(*seed)
                            .threads(*threads)
                            .with_obs(Obs::enabled(store.obs().clone())),
                    )
                    .map_err(store_err)?;
                Ok(proto::tally_json(&tally, *samples))
            }
            // Not deterministic (timings, uptime) — and correctly
            // uncacheable: `Request::cache_key` returns `None` for it.
            Request::Metrics => Ok(self.metrics.metrics_json()),
            Request::Stats { urn } => match urn {
                Some(urn) => Ok(json!({
                    "id": urn.to_string(),
                    "stats": proto::query_stats_json(&query.stats(*urn)),
                })),
                None => {
                    let per_urn: Vec<Value> = query
                        .per_urn_stats()
                        .iter()
                        .map(|(id, st)| {
                            json!({"id": id.to_string(), "stats": proto::query_stats_json(st)})
                        })
                        .collect();
                    Ok(json!({
                        "total": proto::query_stats_json(&query.total_stats()),
                        "per_urn": per_urn,
                        "cache": proto::cache_stats_json(&store.cache_stats()),
                        "query_cache": proto::query_cache_stats_json(&self.cache.stats()),
                    }))
                }
            },
            Request::Build {
                graph,
                k,
                seed,
                lambda,
                codec,
                wait,
            } => {
                let loaded = if graph.ends_with(".mtvg") {
                    graph_io::load_binary(graph)
                } else {
                    graph_io::load_edge_list(graph)
                };
                let g = loaded.map_err(|e| {
                    (
                        ErrorKind::BadRequest,
                        format!("cannot load graph {graph}: {e}"),
                    )
                })?;
                let mut cfg = BuildConfig::new(*k).seed(*seed).codec(*codec);
                if let Some(lambda) = lambda {
                    cfg = cfg.biased(*lambda);
                }
                let handle = store.build_or_get(&g, &cfg).map_err(store_err)?;
                if *wait {
                    handle.wait().map_err(store_err)?;
                }
                let status = match store.meta(handle.id()).map(|m| m.status) {
                    Some(BuildStatus::Built) => "built",
                    Some(BuildStatus::Failed) => "failed",
                    _ => "pending",
                };
                Ok(json!({"urn": handle.id().to_string(), "status": status}))
            }
            Request::ReplFetch {
                replica,
                offset,
                prefix_crc,
                log_id,
            } => {
                let seg = store
                    .journal_segment(*offset, *prefix_crc, motivo_store::SEGMENT_MAX_BYTES)
                    .map_err(store_err)?;
                // A prefix mismatch and a lineage (gc) mismatch both mean
                // the same thing to the replica: re-bootstrap.
                let stale = seg.stale || seg.log_id != *log_id;
                self.repl
                    .registry
                    .on_fetch(replica, *offset, seg.leader_len);
                let payloads: Vec<Value> = if stale {
                    Vec::new()
                } else {
                    seg.payloads.iter().map(|p| json!(hex_encode(p))).collect()
                };
                Ok(json!({
                    "payloads": payloads,
                    "leader_len": seg.leader_len,
                    "log_id": seg.log_id,
                    "stale": stale,
                }))
            }
            Request::ReplManifest => {
                let bytes = store.manifest_bytes().map_err(store_err)?;
                Ok(json!({
                    "manifest": hex_encode(&bytes),
                    "log_id": store.log_id().map_err(store_err)?,
                }))
            }
            Request::ReplFiles { target, replica: _ } => {
                let files = match target {
                    ReplTarget::Urn(id) => store.urn_file_list(*id).map_err(store_err)?,
                    ReplTarget::Graph(fp) => store
                        .graph_file_meta(*fp)
                        .map_err(store_err)?
                        .into_iter()
                        .collect(),
                };
                let rows: Vec<Value> = files
                    .iter()
                    .map(|f| json!({"name": f.name, "len": f.len, "crc": f.crc}))
                    .collect();
                Ok(json!({"files": rows}))
            }
            Request::ReplFile {
                target,
                name,
                offset,
                replica,
            } => {
                let (data, total) = match target {
                    ReplTarget::Urn(id) => store
                        .read_urn_file(*id, name, *offset, motivo_store::FILE_CHUNK_BYTES)
                        .map_err(store_err)?,
                    ReplTarget::Graph(fp) => store
                        .read_graph_file(*fp, *offset, motivo_store::FILE_CHUNK_BYTES)
                        .map_err(store_err)?,
                };
                self.repl.registry.on_file(replica.as_deref());
                Ok(json!({"data": hex_encode(&data), "total": total}))
            }
            Request::ReplStatus => {
                let sync = self.repl.sync.lock().expect("sync status poisoned");
                Ok(json!({
                    "role": if self.repl.is_replica() { "replica" } else { "leader" },
                    "offset": store.replication_offset(),
                    "log_id": store.log_id().map_err(store_err)?,
                    "leader": self.repl.leader,
                    "replicas": self.repl.registry.snapshot_json(),
                    "sync": repl::replica::sync_status_json(&sync),
                }))
            }
            Request::Promote => {
                if !self.repl.is_replica() {
                    return Err((
                        ErrorKind::BadRequest,
                        "this server is already a leader".into(),
                    ));
                }
                let swept = store.promote().map_err(store_err)?;
                // Order matters: the store accepts writes before the role
                // flips, never the reverse — a request racing the
                // promotion sees `ReadOnly`, not a half-promoted server.
                self.repl.set_leader();
                self.repl.stop_sync();
                Ok(json!({"promoted": true, "swept": swept}))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_batch_joins_within_budget() {
        let parts = vec![r#"{"ok":1}"#.to_string(), r#"{"ok":2}"#.to_string()];
        let out = assemble_batch(2, parts.into_iter(), 1 << 20);
        assert_eq!(out, r#"{"responses":[{"ok":1},{"ok":2}]}"#);
        assert_eq!(
            assemble_batch(0, std::iter::empty(), 1 << 20),
            r#"{"responses":[]}"#
        );
    }

    /// Once the budget is spent, remaining slots become error envelopes
    /// and — crucially — the iterator is never advanced again, so
    /// unanswerable sub-requests are not executed.
    #[test]
    fn assemble_batch_stops_executing_past_the_budget() {
        let big = format!(r#"{{"ok":"{}"}}"#, "x".repeat(100));
        let parts: Vec<String> = vec![big.clone(), big.clone(), big];
        let mut pulled = 0usize;
        let out = assemble_batch(
            4,
            parts.into_iter().inspect(|_| {
                pulled += 1;
                assert!(pulled <= 2, "sub-request executed past the budget");
            }),
            150,
        );
        // Part 0 fits; part 1 busts the budget (dropped); parts 2 and 3
        // are never pulled. Slots 1..4 carry the split-the-batch error.
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let rs = v.get("responses").unwrap().as_array().unwrap();
        assert_eq!(rs.len(), 4);
        assert!(rs[0].get("ok").is_some());
        for (i, r) in rs.iter().enumerate().skip(1) {
            let err = r.get("error").unwrap_or_else(|| panic!("slot {i}: {r:?}"));
            assert_eq!(err.get("kind").unwrap().as_str(), Some("BadRequest"));
            assert!(
                err.get("message")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .contains("split the batch"),
                "{r:?}"
            );
        }
        assert_eq!(pulled, 2);
    }

    /// The worst case — every slot an error envelope — still fits the
    /// frame cap with the slack chosen for `BATCH_PAYLOAD_BUDGET`.
    #[test]
    fn assemble_batch_worst_case_fits_the_frame() {
        let out = assemble_batch(proto::MAX_BATCH, std::iter::empty(), BATCH_PAYLOAD_BUDGET);
        assert!(
            out.len() < proto::MAX_FRAME - (64 << 10),
            "{} bytes",
            out.len()
        );
    }

    #[test]
    #[allow(deprecated)] // asserting the builder writes the legacy fields
    fn builder_sets_fields_and_validates() {
        let opts = ServeOptions::builder()
            .workers(3)
            .queue_depth(12)
            .cache_bytes(1 << 20)
            .snapshot_secs(5)
            .replica_of("127.0.0.1:9999")
            .repl_poll_ms(25)
            .build()
            .unwrap();
        assert_eq!((opts.workers, opts.queue_depth), (3, 12));
        assert_eq!((opts.cache_bytes, opts.snapshot_secs), (1 << 20, 5));
        assert_eq!(opts.replica_of.as_deref(), Some("127.0.0.1:9999"));
        assert_eq!(opts.repl_poll_ms, 25);

        // Zeroes keep the resolve-from-the-machine defaults.
        let opts = ServeOptions::builder().build().unwrap();
        assert!(opts.resolved_workers() >= 2);
        assert_eq!(
            opts.resolved_queue_depth(opts.resolved_workers()),
            opts.resolved_workers() * 4
        );

        let err = ServeOptions::builder().workers(MAX_WORKERS + 1).build();
        assert!(err.unwrap_err().contains("cap"));
        let err = ServeOptions::builder().workers(8).queue_depth(4).build();
        assert!(err.unwrap_err().contains("below workers"));
        let err = ServeOptions::builder().repl_poll_ms(50).build();
        assert!(err.unwrap_err().contains("replica_of"));
        // queue_depth >= workers, or either side defaulted, is fine.
        assert!(ServeOptions::builder().workers(8).queue_depth(8).build().is_ok());
        assert!(ServeOptions::builder().queue_depth(1).build().is_ok());
    }
}
