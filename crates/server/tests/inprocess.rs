//! In-process end-to-end tests of the daemon: protocol correctness,
//! backpressure, determinism against the query layer, and graceful
//! shutdown — all against a real TCP socket on an ephemeral port.

use motivo_core::{BuildConfig, SampleConfig};
use motivo_graphlet::GraphletRegistry;
use motivo_server::{proto, Client, ClientError, ServeOptions, Server};
use motivo_store::{StoreQuery, UrnId, UrnStore};
use serde_json::json;
use std::path::PathBuf;
use std::sync::Arc;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("motivo-server-test-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Opens a store at `dir` with one built k=4 urn and returns it.
fn seeded_store(dir: &PathBuf) -> Arc<UrnStore> {
    let graph = motivo_graph::generators::barabasi_albert(200, 3, 5);
    let store = UrnStore::open(dir).unwrap();
    let handle = store
        .build_or_get(&graph, &BuildConfig::new(4).seed(2))
        .unwrap();
    handle.wait().unwrap();
    Arc::new(store)
}

#[test]
fn serves_queries_and_matches_in_process_bytes() {
    let dir = workdir("roundtrip");
    let store = seeded_store(&dir);

    // The in-process truth, serialized exactly as the server does.
    let expected = {
        let query = StoreQuery::new(&store);
        let mut registry = GraphletRegistry::new(4);
        let est = query
            .naive_estimates(
                UrnId(0),
                &mut registry,
                10_000,
                &SampleConfig::seeded(3).threads(2),
            )
            .unwrap();
        serde_json::to_string(&proto::estimates_json(&est, &registry)).unwrap()
    };

    let server = Server::bind(store, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Ping.
    let pong = client.request(&json!({"type": "Ping"})).unwrap();
    assert_eq!(pong.get("pong").unwrap().as_bool(), Some(true));

    // ListUrns sees the built urn.
    let urns = client.request(&json!({"type": "ListUrns"})).unwrap();
    let rows = urns.get("urns").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("status").unwrap().as_str(), Some("built"));
    assert_eq!(rows[0].get("id").unwrap().as_str(), Some("urn-0"));

    // NaiveEstimates over the wire is byte-identical to in-process.
    let ok = client
        .request(&json!({"type": "NaiveEstimates", "urn": 0, "samples": 10_000, "seed": 3, "threads": 2}))
        .unwrap();
    assert_eq!(serde_json::to_string(&ok).unwrap(), expected);

    // Sample returns a canonical-code tally whose occurrences sum to the
    // sample count.
    let ok = client
        .request(&json!({"type": "Sample", "urn": 0, "samples": 2_000, "seed": 1}))
        .unwrap();
    let total: u64 = ok
        .get("classes")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|c| c.get("occurrences").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(total, 2_000);

    // Ags runs and reports adaptive counters.
    let ok = client
        .request(
            &json!({"type": "Ags", "urn": 0, "max_samples": 4_000, "idle_limit": 1_000, "seed": 5}),
        )
        .unwrap();
    assert!(
        ok.get("estimates")
            .unwrap()
            .get("samples")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );

    // Stats saw the queries above.
    let ok = client.request(&json!({"type": "Stats"})).unwrap();
    assert!(
        ok.get("total")
            .unwrap()
            .get("queries")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 3
    );

    // Errors are structured.
    let err = client
        .request(&json!({"type": "NaiveEstimates", "urn": 99, "samples": 10}))
        .unwrap_err();
    match err {
        ClientError::Server { kind, .. } => assert_eq!(kind, "UnknownUrn"),
        other => panic!("unexpected error {other}"),
    }
    let err = client.request(&json!({"type": "Teleport"})).unwrap_err();
    match err {
        ClientError::Server { kind, .. } => assert_eq!(kind, "BadRequest"),
        other => panic!("unexpected error {other}"),
    }

    // Shutdown over the wire; the report accounts for everything.
    client.request(&json!({"type": "Shutdown"})).unwrap();
    let report = server.join();
    assert!(report.requests >= 7, "{report:?}");
    assert_eq!(report.busy_rejections, 0);
    let stats_path = report.stats_path.expect("stats flushed");
    let stats: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).unwrap();
    assert!(
        stats
            .get("total")
            .unwrap()
            .get("queries")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 3
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Request ids are echoed, so a pipelining client can match out-of-order
/// responses; requests with a seed stay deterministic under pipelining.
#[test]
fn pipelined_requests_match_by_id() {
    let dir = workdir("pipeline");
    let store = seeded_store(&dir);
    let opts = ServeOptions::builder()
        .workers(4)
        .queue_depth(64)
        .build()
        .unwrap();
    let server = Server::bind(store, "127.0.0.1:0", opts).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    // Fire 8 requests before reading any response.
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    for i in 0..8u64 {
        let req = json!({"id": i, "type": "NaiveEstimates", "urn": 0, "samples": 1_000, "seed": i});
        motivo_server::proto::write_frame(
            &mut raw,
            serde_json::to_string(&req).unwrap().as_bytes(),
        )
        .unwrap();
    }
    let mut seen = std::collections::HashSet::new();
    let mut payloads = std::collections::HashMap::new();
    for _ in 0..8 {
        let frame = motivo_server::proto::read_frame(&mut raw).unwrap().unwrap();
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
        let id = v.get("id").unwrap().as_u64().unwrap();
        assert!(seen.insert(id), "duplicate response for id {id}");
        payloads.insert(id, serde_json::to_string(&v.get("ok").unwrap()).unwrap());
    }
    assert_eq!(seen.len(), 8);

    // Re-requesting any seed through a fresh client gives identical bytes.
    for i in [0u64, 3, 7] {
        let ok = client
            .request(&json!({"type": "NaiveEstimates", "urn": 0, "samples": 1_000, "seed": i}))
            .unwrap();
        assert_eq!(
            &serde_json::to_string(&ok).unwrap(),
            payloads.get(&i).unwrap()
        );
    }

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A queue of depth 1 with slow jobs must answer `Busy`, not buffer.
#[test]
fn overload_answers_busy() {
    let dir = workdir("busy");
    let store = seeded_store(&dir);
    let opts = ServeOptions::builder()
        .workers(1)
        .queue_depth(1)
        .build()
        .unwrap();
    let server = Server::bind(store, "127.0.0.1:0", opts).unwrap();

    // Saturate: one slow request occupies the worker, one fills the queue,
    // then a burst must bounce. Fire them all pipelined on one connection.
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    let slow = json!({"id": "slow", "type": "NaiveEstimates", "urn": 0, "samples": 150_000, "seed": 1, "threads": 1});
    motivo_server::proto::write_frame(&mut raw, serde_json::to_string(&slow).unwrap().as_bytes())
        .unwrap();
    let burst = 16;
    for i in 0..burst {
        let req = json!({"id": i, "type": "NaiveEstimates", "urn": 0, "samples": 150_000, "seed": 1, "threads": 1});
        motivo_server::proto::write_frame(
            &mut raw,
            serde_json::to_string(&req).unwrap().as_bytes(),
        )
        .unwrap();
    }
    let mut busy = 0u64;
    let mut ok = 0;
    for _ in 0..burst + 1 {
        let frame = motivo_server::proto::read_frame(&mut raw).unwrap().unwrap();
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
        if v.get("ok").is_some() {
            ok += 1;
        } else {
            let kind = v
                .get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            assert_eq!(kind, "Busy");
            busy += 1;
        }
    }
    assert!(busy > 0, "burst never hit backpressure");
    assert!(ok >= 1, "accepted requests must still be served");

    server.shutdown();
    let report = server.join();
    assert_eq!(report.busy_rejections, busy);
    std::fs::remove_dir_all(&dir).ok();
}

/// Shutdown drains: requests accepted before the signal all get real
/// responses, requests after it get `ShuttingDown`.
#[test]
fn graceful_shutdown_drains_accepted_requests() {
    let dir = workdir("drain");
    let store = seeded_store(&dir);
    let opts = ServeOptions::builder()
        .workers(2)
        .queue_depth(32)
        .build()
        .unwrap();
    let server = Server::bind(store, "127.0.0.1:0", opts).unwrap();

    // Fill the pool with slow-ish jobs from several connections.
    let mut conns: Vec<std::net::TcpStream> = (0..6)
        .map(|_| std::net::TcpStream::connect(server.addr()).unwrap())
        .collect();
    for (i, conn) in conns.iter_mut().enumerate() {
        let req = json!({"id": i, "type": "NaiveEstimates", "urn": 0, "samples": 60_000, "seed": 1, "threads": 1});
        motivo_server::proto::write_frame(conn, serde_json::to_string(&req).unwrap().as_bytes())
            .unwrap();
    }
    // Give the readers a moment to accept the frames into the queue.
    std::thread::sleep(std::time::Duration::from_millis(300));
    server.shutdown();

    // Every accepted request still completes with a real payload.
    for conn in conns.iter_mut() {
        let frame = motivo_server::proto::read_frame(conn)
            .unwrap()
            .expect("response before close");
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert!(
            v.get("ok").is_some(),
            "accepted request dropped at shutdown: {v:?}"
        );
    }

    let report = server.join();
    assert!(report.requests >= 6);
    assert!(report.stats_path.is_some());
    std::fs::remove_dir_all(&dir).ok();
}

/// The typed client surface end-to-end: the `Hello` handshake reports
/// the server's protocol limits, the purpose-named methods decode into
/// their reply structs, and the typed estimate matches the raw escape
/// hatch's bytes for the same seed. A connection that never sends
/// `Hello` (every other test here) is the old-client compatibility case.
#[test]
fn typed_client_and_hello_handshake() {
    let dir = workdir("typed");
    let store = seeded_store(&dir);
    let server = Server::bind(store, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let hello = client.hello().unwrap();
    assert_eq!(hello.proto_version, motivo_server::PROTO_VERSION);
    assert!(hello.server.starts_with("motivo "), "{}", hello.server);
    assert!(hello.kinds.iter().any(|k| k == "NaiveEstimates"));
    assert!(
        hello.kinds.iter().all(|k| k != "Invalid"),
        "Invalid is a metrics pseudo-kind, not a dispatchable request"
    );
    assert_eq!(hello.max_pipeline, motivo_server::MAX_PIPELINE as u64);
    assert!(hello.features.iter().any(|f| f == "pipelining"));

    client.ping().unwrap();
    let urns = client.list_urns().unwrap();
    assert_eq!(urns.urns.len(), 1);
    assert_eq!(urns.urns[0].status, "built");

    let est = client.naive_estimates(UrnId(0), 2_000, 7).unwrap();
    assert_eq!((est.k, est.samples), (4, 2_000));
    assert!(est.total_count > 0.0);
    // The typed reply decodes the same payload bytes the raw path sees
    // (a cache replay, since the request is identical).
    let raw = client
        .request(&json!({"type": "NaiveEstimates", "urn": 0, "samples": 2_000, "seed": 7}))
        .unwrap();
    assert_eq!(raw.get("total_count").unwrap().as_f64(), Some(est.total_count));
    assert_eq!(
        raw.get("classes").unwrap().as_array().unwrap().len(),
        est.classes.len()
    );

    let tally = client.sample(UrnId(0), 1_000, 5).unwrap();
    assert_eq!(
        tally.classes.iter().map(|c| c.occurrences).sum::<u64>(),
        1_000
    );

    let stats = client.stats(None).unwrap();
    assert!(stats.get("cache").is_some());
    let metrics = client.metrics().unwrap();
    assert!(metrics.get("kinds").is_some());

    // Unknown urns surface as typed server errors.
    match client.naive_estimates(UrnId(99), 10, 1) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "UnknownUrn"),
        other => panic!("expected UnknownUrn, got {other:?}"),
    }

    client.shutdown().unwrap();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A hostile deeply nested frame must be a `BadRequest`, not a parser
/// stack overflow (which would abort the whole daemon).
#[test]
fn deeply_nested_frame_is_rejected_not_fatal() {
    let dir = workdir("deep");
    let store = seeded_store(&dir);
    let server = Server::bind(store, "127.0.0.1:0", ServeOptions::default()).unwrap();

    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    let bomb = "[".repeat(100_000);
    motivo_server::proto::write_frame(&mut raw, bomb.as_bytes()).unwrap();
    let frame = motivo_server::proto::read_frame(&mut raw).unwrap().unwrap();
    let v: serde_json::Value = serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
    let kind = v.get("error").unwrap().get("kind").unwrap();
    assert_eq!(kind.as_str(), Some("BadRequest"));

    // The server survived and still answers.
    let mut client = Client::connect(server.addr()).unwrap();
    client.request(&json!({"type": "Ping"})).unwrap();
    client.request(&json!({"type": "Shutdown"})).unwrap();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that keeps pipelining after `Shutdown` must not stall the
/// drain: its reader answers the frame in hand and closes the connection,
/// and `join()` returns promptly.
#[test]
fn shutdown_is_not_stalled_by_a_chatty_client() {
    let dir = workdir("chatty");
    let store = seeded_store(&dir);
    let server = Server::bind(store, "127.0.0.1:0", ServeOptions::default()).unwrap();

    let addr = server.addr();
    let spammer = std::thread::spawn(move || {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        // Keep sending Pings until the server hangs up on us.
        loop {
            if motivo_server::proto::write_frame(&mut raw, br#"{"type":"Ping"}"#).is_err() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(100));

    let t0 = std::time::Instant::now();
    server.shutdown();
    server.join();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "drain stalled behind a chatty client: {:?}",
        t0.elapsed()
    );
    spammer.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Cache exactness: for a seeded request the cold (miss) response bytes,
/// the warm (cached) response bytes, and the in-process [`StoreQuery`]
/// serialization are all identical — determinism makes the cache exact.
#[test]
fn cache_replays_exact_cold_bytes() {
    let dir = workdir("cache-exact");
    let store = seeded_store(&dir);

    let expected = {
        let query = StoreQuery::new(&store);
        let mut registry = GraphletRegistry::new(4);
        let est = query
            .naive_estimates(UrnId(0), &mut registry, 5_000, &SampleConfig::seeded(7))
            .unwrap();
        serde_json::to_string(&proto::estimates_json(&est, &registry)).unwrap()
    };

    let server = Server::bind(store, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let req = json!({"type": "NaiveEstimates", "urn": 0, "samples": 5_000, "seed": 7});
    let cold = serde_json::to_string(&client.request(&req).unwrap()).unwrap();
    let warm = serde_json::to_string(&client.request(&req).unwrap()).unwrap();
    assert_eq!(cold, expected, "cold response == in-process bytes");
    assert_eq!(warm, expected, "warm (cached) response == in-process bytes");

    // Stats prove the second answer came from the cache; `threads` is not
    // part of the key, so a third request differing only in threads is a
    // hit too (byte-identical by the determinism invariant).
    let req_threads =
        json!({"type": "NaiveEstimates", "urn": 0, "samples": 5_000, "seed": 7, "threads": 2});
    let third = serde_json::to_string(&client.request(&req_threads).unwrap()).unwrap();
    assert_eq!(third, expected);
    let stats = client.request(&json!({"type": "Stats"})).unwrap();
    let qc = stats.get("query_cache").unwrap();
    assert_eq!(qc.get("misses").unwrap().as_u64(), Some(1), "{stats:?}");
    assert_eq!(qc.get("hits").unwrap().as_u64(), Some(2), "{stats:?}");
    // Only the miss reached the estimator.
    assert_eq!(
        stats.get("total").unwrap().get("queries").unwrap().as_u64(),
        Some(1)
    );

    client.request(&json!({"type": "Shutdown"})).unwrap();
    let report = server.join();
    assert_eq!(report.query_cache.misses, 1);
    assert_eq!(report.query_cache.hits, 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Singleflight: 32 concurrent identical seeded requests produce exactly
/// one estimator run (counter-checked three ways) and 32 byte-identical
/// payloads.
#[test]
fn singleflight_coalesces_32_identical_requests() {
    let dir = workdir("singleflight");
    let store = seeded_store(&dir);
    let opts = ServeOptions::builder()
        .workers(8)
        .queue_depth(64)
        .build()
        .unwrap();
    let server = Server::bind(store, "127.0.0.1:0", opts).unwrap();

    let clients = 32;
    let payloads: Vec<String> = std::thread::scope(|s| {
        let addr = server.addr();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let ok = client
                        .request(&json!({
                            "type": "NaiveEstimates", "urn": 0,
                            "samples": 40_000, "seed": 11,
                        }))
                        .unwrap();
                    serde_json::to_string(&ok).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(payloads.len(), clients);
    assert!(
        payloads.iter().all(|p| p == &payloads[0]),
        "all 32 payloads identical"
    );

    let mut client = Client::connect(server.addr()).unwrap();
    let stats = client.request(&json!({"type": "Stats"})).unwrap();
    let qc = stats.get("query_cache").unwrap();
    let (misses, hits, coalesced) = (
        qc.get("misses").unwrap().as_u64().unwrap(),
        qc.get("hits").unwrap().as_u64().unwrap(),
        qc.get("coalesced").unwrap().as_u64().unwrap(),
    );
    assert_eq!(misses, 1, "exactly one estimator run led the flight");
    assert_eq!(hits + coalesced, 31, "everyone else reused it: {qc:?}");
    // The estimator-side counter agrees: one query reached the store.
    assert_eq!(
        stats.get("total").unwrap().get("queries").unwrap().as_u64(),
        Some(1)
    );

    client.request(&json!({"type": "Shutdown"})).unwrap();
    let report = server.join();
    assert_eq!(report.query_cache.misses, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// A `Batch` frame executes its sub-requests in order through one worker
/// slot: per-sub-request envelopes (own ids echoed), one malformed
/// sub-request failing alone, and cached payloads byte-identical to the
/// single-request path.
#[test]
fn batch_answers_in_order_with_per_subrequest_envelopes() {
    let dir = workdir("batch");
    let store = seeded_store(&dir);
    let server = Server::bind(store, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // The single-request truth for the first sub-request.
    let single = client
        .request(&json!({"type": "NaiveEstimates", "urn": 0, "samples": 3_000, "seed": 5}))
        .unwrap();
    let single_text = serde_json::to_string(&single).unwrap();

    let subs = vec![
        json!({"id": "a", "type": "NaiveEstimates", "urn": 0, "samples": 3_000, "seed": 5}),
        json!({"id": "b", "type": "Teleport"}),
        json!({"type": "Sample", "urn": 0, "samples": 500, "seed": 1}),
        json!({"type": "Ping"}),
        json!({"id": "no", "type": "Shutdown"}),
    ];
    let ok = client
        .request(&json!({"type": "Batch", "requests": subs}))
        .unwrap();
    let responses = ok.get("responses").unwrap().as_array().unwrap();
    assert_eq!(responses.len(), 5, "responses in request order");

    // Sub 0: served from the cache, byte-identical to the single request.
    assert_eq!(responses[0].get("id").unwrap().as_str(), Some("a"));
    assert_eq!(
        serde_json::to_string(&responses[0].get("ok").unwrap()).unwrap(),
        single_text
    );
    // Sub 1: malformed, fails alone with its id echoed.
    assert_eq!(responses[1].get("id").unwrap().as_str(), Some("b"));
    assert_eq!(
        responses[1]
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("BadRequest")
    );
    // Sub 2: a real tally.
    let total: u64 = responses[2]
        .get("ok")
        .unwrap()
        .get("classes")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|c| c.get("occurrences").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(total, 500);
    // Sub 3: Ping answers inside a batch.
    assert_eq!(
        responses[3]
            .get("ok")
            .unwrap()
            .get("pong")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    // Sub 4: Shutdown is not allowed inside a batch — and did not fire.
    assert_eq!(
        responses[4]
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("BadRequest")
    );
    client.request(&json!({"type": "Ping"})).unwrap();

    client.request(&json!({"type": "Shutdown"})).unwrap();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// `cache_bytes: 0` disables residency (every request recomputes) while
/// determinism still makes the recomputed bytes identical.
#[test]
fn disabled_cache_recomputes_identical_bytes() {
    let dir = workdir("nocache");
    let store = seeded_store(&dir);
    let opts = ServeOptions::builder()
        .workers(2)
        .queue_depth(16)
        .cache_bytes(0)
        .build()
        .unwrap();
    let server = Server::bind(store, "127.0.0.1:0", opts).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let req = json!({"type": "NaiveEstimates", "urn": 0, "samples": 2_000, "seed": 3});
    let a = serde_json::to_string(&client.request(&req).unwrap()).unwrap();
    let b = serde_json::to_string(&client.request(&req).unwrap()).unwrap();
    assert_eq!(a, b, "determinism holds without the cache");
    client.request(&json!({"type": "Shutdown"})).unwrap();
    let report = server.join();
    assert_eq!(report.query_cache.misses, 2, "both requests recomputed");
    assert_eq!(report.query_cache.resident_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// `Metrics` histogram counts equal the requests a client actually
/// issued, kind by kind — the acceptance check of the observability
/// layer. Error responses count as requests *and* errors.
#[test]
fn metrics_counts_match_issued_requests() {
    let dir = workdir("metrics");
    let store = seeded_store(&dir);
    let server = Server::bind(store, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for _ in 0..2 {
        client.request(&json!({"type": "Ping"})).unwrap();
    }
    for seed in 0..5u64 {
        client
            .request(&json!({"type": "NaiveEstimates", "urn": 0, "samples": 1_000, "seed": seed}))
            .unwrap();
    }
    for seed in 0..3u64 {
        client
            .request(&json!({"type": "Sample", "urn": 0, "samples": 500, "seed": seed}))
            .unwrap();
    }
    client.request(&json!({"type": "Stats"})).unwrap();
    // One failing request: counted as a NaiveEstimates request and error.
    client
        .request(&json!({"type": "NaiveEstimates", "urn": 99, "samples": 10}))
        .unwrap_err();

    let ok = client.request(&json!({"type": "Metrics"})).unwrap();
    let row = |kind: &str| {
        ok.get("kinds")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|r| r.get("kind").unwrap().as_str() == Some(kind))
            .unwrap_or_else(|| panic!("no {kind} row"))
            .clone()
    };
    let count = |kind: &str| row(kind).get("count").unwrap().as_u64().unwrap();
    let errors = |kind: &str| row(kind).get("errors").unwrap().as_u64().unwrap();
    assert_eq!(count("Ping"), 2);
    assert_eq!(count("NaiveEstimates"), 6);
    assert_eq!(errors("NaiveEstimates"), 1);
    assert_eq!(count("Sample"), 3);
    assert_eq!(errors("Sample"), 0);
    assert_eq!(count("Stats"), 1);
    // The Metrics request itself was counted before its handler ran.
    assert_eq!(count("Metrics"), 1);
    // Quantiles are ordered and bounded by the exact max.
    let ne = row("NaiveEstimates");
    let q = |k: &str| ne.get(k).unwrap().as_u64().unwrap();
    assert!(q("p50_us") <= q("p90_us") && q("p90_us") <= q("p99_us"));
    assert!(q("p99_us") <= q("max_us").max(1));
    // The queue-wait/service split saw every pooled request (Pings are
    // answered inline and excluded). The Metrics job itself has recorded
    // its queue wait but is still mid-service while it renders this.
    let service = ok
        .get("service")
        .unwrap()
        .get("count")
        .unwrap()
        .as_u64()
        .unwrap();
    let waits = ok
        .get("queue_wait")
        .unwrap()
        .get("count")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(waits, 11, "5+3 queries, Stats, the error, and Metrics");
    assert_eq!(service, 10, "everything but the in-flight Metrics job");
    // The Prometheus text covers the whole stack, store counters included.
    let text = ok.get("text").unwrap().as_str().unwrap().to_string();
    for needle in [
        "motivo_server_requests_naiveestimates 6",
        "motivo_server_latency_sample_us_count 3",
        "motivo_store_lru_hits",
        "quantile=\"0.99\"",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    client.request(&json!({"type": "Shutdown"})).unwrap();
    let report = server.join();
    // The report carries the same per-kind rows...
    let ne_report = report
        .per_kind
        .iter()
        .find(|r| r.kind == "NaiveEstimates")
        .unwrap();
    assert_eq!((ne_report.count, ne_report.errors), (6, 1));
    // ...as does the flushed server-stats.json.
    let stats: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(report.stats_path.unwrap()).unwrap())
            .unwrap();
    let per_kind = stats.get("per_kind").unwrap().as_array().unwrap();
    assert!(per_kind
        .iter()
        .any(|r| r.get("kind").unwrap().as_str() == Some("Sample")
            && r.get("count").unwrap().as_u64() == Some(3)));
    // The final metrics snapshot landed next to it, as valid JSON.
    let metrics_path = report.metrics_path.expect("final snapshot written");
    assert!(metrics_path
        .file_name()
        .unwrap()
        .to_str()
        .unwrap()
        .starts_with("metrics-"));
    let snap: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    assert!(snap.get("histograms").is_some(), "{snap:?}");
    assert!(snap.get("counters").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

/// Instrumentation is a side channel: with the result cache disabled so
/// every request recomputes, seeded responses stay byte-identical at 1,
/// 2, and 8 sampling threads.
#[test]
fn instrumented_responses_stay_deterministic_across_threads() {
    let dir = workdir("obs-determinism");
    let store = seeded_store(&dir);
    // cache_bytes = 0 forces a real recompute per request.
    let opts = ServeOptions::builder().cache_bytes(0).build().unwrap();
    let server = Server::bind(store, "127.0.0.1:0", opts).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut bodies = Vec::new();
    for threads in [1u64, 2, 8] {
        let reqs = [
            json!({"type": "NaiveEstimates", "urn": 0, "samples": 3_000, "seed": 11, "threads": threads}),
            json!({"type": "Ags", "urn": 0, "max_samples": 3_000, "seed": 11, "threads": threads}),
        ];
        for req in reqs {
            let ok = client.request(&req).unwrap();
            bodies.push(serde_json::to_string(&ok).unwrap());
        }
    }
    for i in 1..3 {
        assert_eq!(bodies[0], bodies[2 * i], "NaiveEstimates diverged");
        assert_eq!(bodies[1], bodies[2 * i + 1], "Ags diverged");
    }
    client.request(&json!({"type": "Shutdown"})).unwrap();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Periodic snapshots: with `snapshot_secs: 1` a long-enough serve window
/// leaves at least one periodic file *plus* the final shutdown snapshot.
#[test]
fn periodic_metrics_snapshots_are_written() {
    let dir = workdir("snapshots");
    let store = seeded_store(&dir);
    let opts = ServeOptions::builder().snapshot_secs(1).build().unwrap();
    let server = Server::bind(store, "127.0.0.1:0", opts).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.request(&json!({"type": "Ping"})).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(1400));
    client.request(&json!({"type": "Shutdown"})).unwrap();
    let report = server.join();
    assert!(report.metrics_path.is_some());
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_str().unwrap_or("");
            name.starts_with("metrics-") && name.ends_with(".json")
        })
        .collect();
    assert!(snapshots.len() >= 2, "periodic + final, got {snapshots:?}");
    // No temp litter from the atomic writes.
    assert!(!std::fs::read_dir(&dir).unwrap().any(|e| e
        .unwrap()
        .file_name()
        .to_str()
        .unwrap_or("")
        .ends_with(".tmp")));
    std::fs::remove_dir_all(&dir).ok();
}
