//! Lightweight span tracing: scoped guards that time a phase and, on
//! drop, push one structured event into a bounded ring buffer.
//!
//! The ring keeps the most recent `capacity` events; older events are
//! dropped (and counted) rather than blocking or growing without bound,
//! so tracing can stay on in production. Events drain as JSON lines —
//! one self-contained object per line — which pipes straight into any
//! line-oriented tool.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Histogram;

/// Default ring capacity (events kept before the oldest are dropped).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotone sequence number (gaps reveal dropped events).
    pub seq: u64,
    /// The phase label passed to `span(..)`.
    pub label: String,
    /// Span start, µs since the owning registry was created.
    pub start_us: u64,
    /// Span duration, µs.
    pub dur_us: u64,
}

impl SpanEvent {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"label\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            self.seq,
            crate::registry::json_escape(&self.label),
            self.start_us,
            self.dur_us
        )
    }
}

struct Ring {
    buf: VecDeque<SpanEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, shared ring of completed [`SpanEvent`]s.
#[derive(Clone)]
pub struct SpanRing {
    inner: Arc<Mutex<Ring>>,
}

impl SpanRing {
    /// A ring keeping at most `capacity` events.
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing {
            inner: Arc::new(Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
            })),
        }
    }

    /// Appends one event, evicting the oldest if the ring is full.
    pub fn push(&self, label: String, start_us: u64, dur_us: u64) {
        let mut ring = self.inner.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(SpanEvent {
            seq,
            label,
            start_us,
            dur_us,
        });
    }

    /// Removes and returns every buffered event, oldest first.
    pub fn drain(&self) -> Vec<SpanEvent> {
        self.inner.lock().unwrap().buf.drain(..).collect()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Drains the ring and renders it as JSON lines (one event per line,
    /// trailing newline after each).
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.drain() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

/// A scoped timer for one phase: created by [`crate::Registry::span`],
/// it records into the ring *and* into the
/// phase's `span.<label>` histogram when dropped.
pub struct SpanGuard {
    ring: SpanRing,
    hist: Arc<Histogram>,
    label: String,
    start_us: u64,
    started: Instant,
}

impl SpanGuard {
    pub(crate) fn new(
        ring: SpanRing,
        hist: Arc<Histogram>,
        label: String,
        start_us: u64,
    ) -> SpanGuard {
        SpanGuard {
            ring,
            hist,
            label,
            start_us,
            started: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.hist.record(ns);
        self.ring
            .push(std::mem::take(&mut self.label), self.start_us, ns / 1000);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = SpanRing::new(3);
        for i in 0..5u64 {
            ring.push(format!("ev{i}"), i, 1);
        }
        assert_eq!(ring.dropped(), 2);
        let events = ring.drain();
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(events[0].label, "ev2");
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_rendering_is_one_object_per_line() {
        let ring = SpanRing::new(8);
        ring.push("build.level2".to_string(), 10, 250);
        ring.push("with \"quotes\"".to_string(), 20, 1);
        let text = ring.drain_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"label\":\"build.level2\",\"start_us\":10,\"dur_us\":250}"
        );
        assert!(lines[1].contains("with \\\"quotes\\\""));
    }
}
