//! # motivo-obs
//!
//! The workspace-wide observability layer: every other motivo crate
//! reports through the primitives here, and the server's `Metrics` wire
//! request, the periodic `metrics-<ts>.json` snapshots, and the CI
//! latency gate are all rendered from the same [`Registry`].
//!
//! Three primitives, all std-only and allocation-free on the hot path:
//!
//! - [`Counter`] / [`Gauge`] — single relaxed atomics behind `Arc`
//!   handles, registered by name in a global-free [`Registry`] (no
//!   process-wide singleton: a store, a server, and a test can each own
//!   an independent registry).
//! - [`Histogram`] — an HDR-style log-bucketed latency histogram:
//!   `record(ns)` is two-three relaxed `fetch_add`s, buckets cover
//!   1µs..137s with ≤ 12.5% relative quantile error, histograms merge
//!   associatively, and snapshots are wait-free reads.
//! - [`span`](Registry::span) guards — scoped timers that on drop push a
//!   structured event into a bounded ring buffer (drainable as JSON
//!   lines) *and* feed a `span.<label>` histogram, so instrumenting a
//!   phase yields both a trace and a latency distribution.
//!
//! [`Obs`] is the optional-handle wrapper config structs embed: a
//! disabled `Obs` makes every instrumentation site a no-op, which keeps
//! the sampling hot loops free of overhead unless a registry is attached.
//!
//! [`atomic_write`] is the shared temp-file+rename helper used for every
//! sidecar the workspace persists (store stats, metrics snapshots): a
//! crash mid-write can never shadow a previously good file.

pub mod fs;
pub mod hist;
pub mod registry;
pub mod span;

pub use fs::atomic_write;
pub use hist::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Obs, Registry};
pub use span::{SpanEvent, SpanGuard, SpanRing, DEFAULT_SPAN_CAPACITY};
