//! The metric registry: named counters, gauges, and histograms plus the
//! span ring, with deterministic plaintext (Prometheus-style) and JSON
//! renderings.
//!
//! There is deliberately no global singleton. A [`Registry`] is owned by
//! whoever needs one (a store, a server, a test) and handed around as an
//! `Arc` — usually wrapped in an [`Obs`] so call sites stay no-ops when
//! observability is off. Registration takes a lock; the returned handles
//! are `Arc`-backed atomics, so the hot path never touches the registry
//! again.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::span::{SpanGuard, SpanRing, DEFAULT_SPAN_CAPACITY};

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh unregistered counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable value (e.g. current cache bytes). Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named collection of metrics plus the span ring (module docs have the
/// ownership model).
pub struct Registry {
    start: Instant,
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: SpanRing,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default span-ring capacity.
    pub fn new() -> Registry {
        Registry::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An empty registry keeping at most `capacity` span events.
    pub fn with_span_capacity(capacity: usize) -> Registry {
        Registry {
            start: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            spans: SpanRing::new(capacity),
        }
    }

    /// Seconds since the registry was created (the process's metric epoch).
    pub fn uptime_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. The handle is cheap to clone and lock-free to bump.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Starts a span for `label`. When the returned guard drops, the
    /// elapsed time is recorded into the `span.<label>` histogram and an
    /// event is pushed into the ring buffer.
    pub fn span(&self, label: impl Into<String>) -> SpanGuard {
        let label = label.into();
        let hist = self.histogram(&format!("span.{label}"));
        let start_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        SpanGuard::new(self.spans.clone(), hist, label, start_us)
    }

    /// The span ring (drain it for JSON-lines traces).
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Current counter values, sorted by name.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Current gauge values, sorted by name.
    pub fn gauge_values(&self) -> BTreeMap<String, u64> {
        self.gauges
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshots of every registered histogram, sorted by name.
    pub fn histogram_snapshots(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (counters and gauges as-is, histograms as µs summaries with
    /// `quantile` labels). Output is deterministic: sorted by name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# motivo metrics\n");
        out.push_str(&format!(
            "motivo_uptime_seconds {}\n",
            fmt_f64(self.uptime_secs())
        ));
        for (name, v) in self.counter_values() {
            let m = metric_name(&name);
            out.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
        }
        for (name, v) in self.gauge_values() {
            let m = metric_name(&name);
            out.push_str(&format!("# TYPE {m} gauge\n{m} {v}\n"));
        }
        for (name, s) in self.histogram_snapshots() {
            let m = format!("{}_us", metric_name(&name));
            out.push_str(&format!("# TYPE {m} summary\n"));
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "{m}{{quantile=\"{label}\"}} {}\n",
                    fmt_f64(ns_to_us(s.quantile(q)))
                ));
            }
            out.push_str(&format!("{m}_sum {}\n", fmt_f64(ns_to_us(s.sum))));
            out.push_str(&format!("{m}_count {}\n", s.count()));
            out.push_str(&format!("{m}_max {}\n", fmt_f64(ns_to_us(s.max))));
        }
        out
    }

    /// Renders the full registry state as one JSON object (the snapshot
    /// file format; see DESIGN.md §7). Keys are sorted, so equal states
    /// render byte-identically.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"uptime_secs\":{}", fmt_f64(self.uptime_secs())));
        out.push_str(",\"counters\":{");
        push_map(&mut out, self.counter_values(), |v| v.to_string());
        out.push_str("},\"gauges\":{");
        push_map(&mut out, self.gauge_values(), |v| v.to_string());
        out.push_str("},\"histograms\":{");
        push_map(&mut out, self.histogram_snapshots(), |s| {
            format!(
                "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                s.count(),
                fmt_f64(ns_to_us(s.mean())),
                fmt_f64(ns_to_us(s.quantile(0.5))),
                fmt_f64(ns_to_us(s.quantile(0.9))),
                fmt_f64(ns_to_us(s.quantile(0.99))),
                fmt_f64(ns_to_us(s.max))
            )
        });
        out.push_str(&format!(
            "}},\"spans_buffered\":{},\"spans_dropped\":{}}}",
            self.spans.len(),
            self.spans.dropped()
        ));
        out
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.read().unwrap().len())
            .field("gauges", &self.gauges.read().unwrap().len())
            .field("histograms", &self.histograms.read().unwrap().len())
            .finish()
    }
}

fn push_map<V>(out: &mut String, map: BTreeMap<String, V>, mut render: impl FnMut(V) -> String) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", json_escape(&k), render(v)));
    }
}

/// Nanoseconds to microseconds as a float.
fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Formats an f64 as a JSON-safe number literal.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

/// Maps a dotted metric name (`server.latency.Sample`) to a Prometheus
/// identifier (`motivo_server_latency_sample`).
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("motivo_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a string for embedding inside JSON double quotes.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An optional [`Registry`] handle for embedding in config structs: all
/// instrumentation is a no-op until a registry is attached, so hot loops
/// pay nothing when observability is off.
#[derive(Clone, Default)]
pub struct Obs {
    reg: Option<Arc<Registry>>,
}

impl Obs {
    /// An enabled handle reporting into `registry`.
    pub fn enabled(registry: Arc<Registry>) -> Obs {
        Obs {
            reg: Some(registry),
        }
    }

    /// A disabled handle (every call is a no-op). Same as `Obs::default()`.
    pub fn none() -> Obs {
        Obs::default()
    }

    /// True when a registry is attached.
    pub fn is_enabled(&self) -> bool {
        self.reg.is_some()
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.reg.as_ref()
    }

    /// Registers/fetches a counter (None when disabled).
    pub fn counter(&self, name: &str) -> Option<Counter> {
        self.reg.as_ref().map(|r| r.counter(name))
    }

    /// Registers/fetches a gauge (None when disabled).
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.reg.as_ref().map(|r| r.gauge(name))
    }

    /// Registers/fetches a histogram (None when disabled).
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.reg.as_ref().map(|r| r.histogram(name))
    }

    /// Starts a span (None when disabled); hold the guard for the phase.
    pub fn span(&self, label: impl Into<String>) -> Option<SpanGuard> {
        self.reg.as_ref().map(|r| r.span(label))
    }

    /// Convenience: bump `name` by one (registry lookup per call — fine
    /// for rare events, fetch a [`Counter`] handle for hot paths).
    pub fn inc(&self, name: &str) {
        if let Some(r) = &self.reg {
            r.counter(name).inc();
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reg {
            Some(r) => write!(f, "Obs({r:?})"),
            None => write!(f, "Obs(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_registry_reads_them() {
        let reg = Registry::new();
        let c = reg.counter("store.journal.appends");
        c.inc();
        c.add(4);
        // Second lookup returns the same cell.
        assert_eq!(reg.counter("store.journal.appends").get(), 5);
        let g = reg.gauge("cache.bytes");
        g.set(100);
        g.sub(30);
        g.sub(200); // saturates
        g.add(7);
        assert_eq!(g.get(), 7);
        let h = reg.histogram("lat");
        h.record(2000);
        assert_eq!(reg.histogram("lat").count(), 1);
    }

    #[test]
    fn spans_feed_both_ring_and_histogram() {
        let reg = Registry::new();
        {
            let _g = reg.span("build.level2");
        }
        {
            let _g = reg.span("build.level2");
        }
        let events = reg.spans().drain();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.label == "build.level2"));
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(reg.histogram("span.build.level2").count(), 2);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_sorted() {
        let reg = Registry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        reg.gauge("mem").set(9);
        reg.histogram("server.latency.Ping").record(1500);
        let text = reg.render_prometheus();
        let a = text.find("motivo_a_first 1").expect("counter a");
        let b = text.find("motivo_b_second 2").expect("counter b");
        assert!(a < b, "names must render sorted");
        assert!(text.contains("# TYPE motivo_mem gauge"));
        assert!(text.contains("# TYPE motivo_server_latency_ping_us summary"));
        assert!(text.contains("motivo_server_latency_ping_us{quantile=\"0.99\"}"));
        assert!(text.contains("motivo_server_latency_ping_us_count 1"));
        // Renders identically when nothing changed (modulo uptime line).
        let strip = |t: &str| {
            t.lines()
                .filter(|l| !l.starts_with("motivo_uptime_seconds"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&text), strip(&reg.render_prometheus()));
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let reg = Registry::new();
        reg.counter("c\"quoted\"").inc();
        reg.histogram("h").record(5000);
        let json = reg.snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\\\"quoted\\\"\":1"));
        assert!(json.contains("\"histograms\":{\"h\":{\"count\":1,"));
        assert!(json.contains("\"spans_dropped\":0"));
    }

    #[test]
    fn disabled_obs_is_a_noop() {
        let obs = Obs::none();
        assert!(!obs.is_enabled());
        assert!(obs.counter("x").is_none());
        assert!(obs.histogram("x").is_none());
        assert!(obs.span("x").is_none());
        obs.inc("x"); // must not panic
    }
}
