//! Atomic sidecar writes: temp file + fsync + rename.
//!
//! Every JSON sidecar the workspace persists (store stats, metric
//! snapshots, server stats) goes through [`atomic_write`], so a crash at
//! any point leaves either the previous good file or the new one — never
//! a truncated hybrid. The temp file lives in the same directory as the
//! target (rename must not cross filesystems) and is hidden behind a
//! leading dot so directory scans skip it.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: the content lands in a sibling
/// temp file, is fsynced, and only then renamed over the target.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(".{}.tmp", name.to_string_lossy()));
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("motivo-obs-fs-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let target = dir.join("snap.json");
        atomic_write(&target, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"{\"v\":1}");
        atomic_write(&target, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"{\"v\":2}");
        // No temp litter left behind.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["snap.json"]);
    }

    #[test]
    fn interrupted_write_never_shadows_a_good_snapshot() {
        let dir = tmp_dir("crash");
        let target = dir.join("snap.json");
        atomic_write(&target, b"{\"good\":true}").unwrap();

        // Simulate a crash mid-write: a partial temp file exists but the
        // rename never happened.
        let tmp = dir.join(".snap.json.tmp");
        std::fs::write(&tmp, b"{\"tru").unwrap();

        // The published file still reads back complete.
        assert_eq!(std::fs::read(&target).unwrap(), b"{\"good\":true}");

        // The next successful write replaces both the target and the
        // stale temp file.
        atomic_write(&target, b"{\"good\":2}").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"{\"good\":2}");
        assert!(!tmp.exists());
    }
}
