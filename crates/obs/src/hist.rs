//! HDR-style log-bucketed latency histogram.
//!
//! Values are nanoseconds. The bucket layout is fixed and shared by every
//! histogram, which is what makes merges trivially associative:
//!
//! - bucket 0 holds everything below 2^10 ns (~1µs) — the "underflow"
//!   bucket for operations too fast to care about;
//! - each octave `o ∈ 10..=36` (1µs .. 2^37 ns ≈ 137s) is split into 4
//!   linear sub-buckets of width `2^(o-2)`, so a bucket's width is at most
//!   a quarter of its lower bound;
//! - values at or above 2^37 ns saturate into the top bucket.
//!
//! That is `1 + 27*4 = 109` buckets. A quantile estimate is the midpoint
//! of the bucket containing the true quantile (clamped to the observed
//! max), so for in-range values the estimate lands in the *same bucket*
//! as the true order statistic and the relative error is bounded by half
//! a bucket width: ≤ 12.5%.
//!
//! `record` is two relaxed `fetch_add`s plus a `fetch_max` — cheap enough
//! for per-request and per-sample hot paths — and every read is a
//! wait-free snapshot of the relaxed counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// First octave with real buckets: values below `2^MIN_OCTAVE` ns share
/// the underflow bucket.
const MIN_OCTAVE: u32 = 10;
/// Last octave; values at or above `2^(MAX_OCTAVE+1)` ns saturate.
const MAX_OCTAVE: u32 = 36;
/// Linear sub-buckets per octave.
const SUBS: u32 = 4;

/// Total bucket count: one underflow bucket plus 4 per octave.
pub const NUM_BUCKETS: usize = 1 + ((MAX_OCTAVE - MIN_OCTAVE + 1) * SUBS) as usize;

/// Smallest value that saturates into the top bucket (2^37 ns ≈ 137s).
const SATURATE_NS: u64 = 1 << (MAX_OCTAVE + 1);

/// Maps a nanosecond value to its bucket index.
pub fn bucket_index(ns: u64) -> usize {
    if ns < (1 << MIN_OCTAVE) {
        return 0;
    }
    let v = ns.min(SATURATE_NS - 1);
    let o = 63 - v.leading_zeros(); // MIN_OCTAVE..=MAX_OCTAVE
    let sub = ((v >> (o - 2)) & 0b11) as u32;
    (1 + (o - MIN_OCTAVE) * SUBS + sub) as usize
}

/// Inclusive lower bound of a bucket, in ns.
pub fn bucket_lower(idx: usize) -> u64 {
    assert!(idx < NUM_BUCKETS);
    if idx == 0 {
        return 0;
    }
    let i = (idx - 1) as u32;
    let o = MIN_OCTAVE + i / SUBS;
    let sub = (i % SUBS) as u64;
    (1u64 << o) + sub * (1u64 << (o - 2))
}

/// Exclusive upper bound of a bucket, in ns (the top bucket reports the
/// saturation threshold; recorded values above it are only visible via
/// the exact tracked max).
pub fn bucket_upper(idx: usize) -> u64 {
    assert!(idx < NUM_BUCKETS);
    if idx == NUM_BUCKETS - 1 {
        SATURATE_NS
    } else {
        bucket_lower(idx + 1)
    }
}

/// A merge-able, thread-safe latency histogram (see module docs for the
/// bucket math).
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Total of all recorded values, ns (saturating).
    sum: AtomicU64,
    /// Exact maximum recorded value, ns.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds). Lock-free; safe from any thread.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records an elapsed [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Adds every count from `other` into `self`. Merging is associative
    /// and commutative because the bucket layout is global.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Wait-free copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Estimated `q`-quantile in ns (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("p50_ns", &s.quantile(0.5))
            .field("max_ns", &s.max)
            .finish()
    }
}

/// A plain-data copy of a [`Histogram`], safe to compare and serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (length [`NUM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total of recorded values, ns.
    pub sum: u64,
    /// Exact maximum recorded value, ns.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value in ns (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Estimated `q`-quantile in ns: the midpoint of the bucket holding
    /// the `ceil(q*n)`-th smallest value, clamped to the observed max.
    /// The estimate falls in the same bucket as the true order statistic,
    /// which bounds the relative error at 12.5% for in-range values.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        if target == n {
            return self.max; // the top order statistic is tracked exactly
        }
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let lo = bucket_lower(idx);
                let hi = bucket_upper(idx);
                let mid = lo + (hi - lo) / 2;
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s counts into `self` (snapshot-level merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries() {
        // Underflow bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1023), 0);
        // First real octave: [1024, 2048) in 4 sub-buckets of width 256.
        assert_eq!(bucket_index(1024), 1);
        assert_eq!(bucket_index(1279), 1);
        assert_eq!(bucket_index(1280), 2);
        assert_eq!(bucket_index(1791), 3);
        assert_eq!(bucket_index(1792), 4);
        assert_eq!(bucket_index(2047), 4);
        // Next octave starts a fresh run of 4.
        assert_eq!(bucket_index(2048), 5);
        // Top bucket and saturation.
        assert_eq!(bucket_index(SATURATE_NS - 1), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(SATURATE_NS), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bounds_are_consistent_with_indexing() {
        for idx in 0..NUM_BUCKETS {
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(lo < hi, "bucket {idx}: {lo} !< {hi}");
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx}");
            assert_eq!(bucket_index(hi - 1), idx, "upper bound of {idx}");
            if idx + 1 < NUM_BUCKETS {
                assert_eq!(bucket_index(hi), idx + 1, "start of {}", idx + 1);
            }
        }
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(us * 1000); // 1µs..1ms uniformly
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // True p50 = 500_000ns, p99 = 990_000ns; bucket error ≤ 12.5%.
        assert!((437_500..=562_500).contains(&p50), "p50 = {p50}");
        assert!((866_250..=1_113_750).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1_000_000); // clamped to exact max
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn top_bucket_saturates_without_losing_counts() {
        let h = Histogram::new();
        h.record(SATURATE_NS);
        h.record(1 << 50);
        h.record(u64::MAX / 4);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 3);
        assert_eq!(s.max, u64::MAX / 4);
        // Quantile of an all-saturated histogram never exceeds the max.
        assert!(h.quantile(0.5) <= s.max);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::empty());
    }

    fn filled(values: &[u64]) -> Histogram {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a: Vec<u64> = (0..200).map(|i| 1000 + i * 7919).collect();
        let b: Vec<u64> = (0..150).map(|i| 500 + i * 104_729).collect();
        let c: Vec<u64> = (0..90).map(|i| i * 1_299_709).collect();

        // (a+b)+c
        let left = filled(&a);
        left.merge_from(&filled(&b));
        left.merge_from(&filled(&c));
        // a+(b+c)
        let bc = filled(&b);
        bc.merge_from(&filled(&c));
        let right = filled(&a);
        right.merge_from(&bc);
        // (c+a)+b
        let comm = filled(&c);
        comm.merge_from(&filled(&a));
        comm.merge_from(&filled(&b));

        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let oracle = filled(&all).snapshot();
        assert_eq!(left.snapshot(), oracle);
        assert_eq!(right.snapshot(), oracle);
        assert_eq!(comm.snapshot(), oracle);
    }

    #[test]
    fn eight_threads_lose_no_counts() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 100_000;
        let h = Histogram::new();
        let expected_sum: u64 = (0..THREADS)
            .flat_map(|t| (0..PER_THREAD).map(move |i| t * 1_000_003 + i * 997))
            .sum();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * 1_000_003 + i * 997);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS * PER_THREAD);
        assert_eq!(s.sum, expected_sum);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Quantile estimates land in the same bucket as the true order
        /// statistic from a sorted-vector oracle, which bounds relative
        /// error at 12.5% for in-range values.
        #[test]
        fn quantile_matches_sorted_oracle(
            values in proptest::collection::vec(1u64..(1u64 << 38), 1..400),
            qi in 0u32..=100,
        ) {
            let q = qi as f64 / 100.0;
            let h = filled(&values);
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let n = sorted.len() as u64;
            let target = ((q * n as f64).ceil() as u64).clamp(1, n);
            let oracle = sorted[(target - 1) as usize];
            let est = h.quantile(q);
            prop_assert_eq!(
                bucket_index(est),
                bucket_index(oracle),
                "q={} est={} oracle={}",
                q,
                est,
                oracle
            );
            if (1024..SATURATE_NS).contains(&oracle) {
                let err = est.abs_diff(oracle);
                prop_assert!(
                    err * 8 <= oracle,
                    "relative error above 12.5%: est={} oracle={}",
                    est,
                    oracle
                );
            }
        }
    }
}
