//! A long-lived motif-query service over the urn store: build urns for two
//! graphs once, then serve interleaved queries from the LRU cache —
//! reopening the store afterwards to show nothing gets rebuilt.
//!
//! ```sh
//! cargo run --release --example store_service
//! ```

use motivo::core::{AgsConfig, BuildConfig, SampleConfig};
use motivo::graphlet::{name, GraphletRegistry};
use motivo::store::{StoreQuery, UrnStore};

fn main() {
    let dir = std::env::temp_dir().join("motivo-store-service-example");
    std::fs::remove_dir_all(&dir).ok();

    // Two tenants: a social-like graph and a flat random graph.
    let social = motivo::graph::generators::barabasi_albert(3_000, 4, 42);
    let flat = motivo::graph::generators::erdos_renyi(3_000, 9_000, 7);
    let k = 5;

    let (social_id, flat_id) = {
        let store = UrnStore::open(&dir).expect("open store");
        // Enqueue both builds on the background worker, then block on each.
        let social_build = store
            .build_or_get(&social, &BuildConfig::new(k).seed(1))
            .expect("enqueue social");
        let flat_build = store
            .build_or_get(&flat, &BuildConfig::new(k).seed(2))
            .expect("enqueue flat");
        println!(
            "enqueued {} and {} (worker builds while we wait)",
            social_build.id(),
            flat_build.id()
        );
        let social_urn = social_build.wait().expect("social build");
        let flat_urn = flat_build.wait().expect("flat build");
        println!(
            "built: social {} treelets, flat {} treelets",
            social_urn.urn().total_treelets(),
            flat_urn.urn().total_treelets()
        );

        // A second request for the same (graph, config) is a no-op reuse.
        let again = store
            .build_or_get(&social, &BuildConfig::new(k).seed(1))
            .expect("re-request");
        assert_eq!(again.id(), social_build.id());
        println!("re-request deduplicated onto {}", again.id());
        (social_build.id(), flat_build.id())
    };

    // Fresh instance, as a restarted service would see it: urns come back
    // from disk, no rebuild.
    let store = UrnStore::open(&dir).expect("reopen store");
    println!(
        "\nreopened store: {} urns, {} graphs on disk",
        store.list().len(),
        store.graphs().len()
    );

    let query = StoreQuery::new(&store);
    let mut social_reg = GraphletRegistry::new(k as u8);
    let mut flat_reg = GraphletRegistry::new(k as u8);

    // Interleaved traffic: the first query per urn loads from disk (miss),
    // the rest are served from the cache (hits).
    for round in 0..3u64 {
        for (label, id, reg) in [
            ("social", social_id, &mut social_reg),
            ("flat", flat_id, &mut flat_reg),
        ] {
            let est = query
                .naive_estimates(id, reg, 50_000, &SampleConfig::seeded(round + 10))
                .expect("query");
            println!(
                "round {round} {label:>6} ({id}): total ~{:.3e} from {} samples",
                est.total_count(),
                est.samples
            );
        }
    }

    // Rare-motif traffic goes through AGS on the same cached urns.
    let ags = query
        .ags(
            social_id,
            &mut social_reg,
            &AgsConfig {
                max_samples: 50_000,
                ..AgsConfig::default()
            },
        )
        .expect("ags query");
    let rare = ags
        .estimates
        .per_graphlet
        .iter()
        .filter(|e| e.count > 0.0)
        .min_by(|a, b| a.count.total_cmp(&b.count));
    if let Some(e) = rare {
        println!(
            "\nAGS rarest social motif: {} (~{:.1} copies, {} covered classes)",
            name(&social_reg.info(e.index).graphlet),
            e.count,
            ags.covered
        );
    }

    // Concurrent clients: the sharded stats and the lock-free read path let
    // queries run in parallel without serializing on the scoreboard, and the
    // seed-split sampler makes every client's answer reproducible.
    let before = query.total_stats().queries;
    crossbeam::thread::scope(|scope| {
        for client in 0..4u64 {
            let query = &query;
            scope.spawn(move |_| {
                let mut reg = GraphletRegistry::new(k as u8);
                let id = if client % 2 == 0 { social_id } else { flat_id };
                query
                    .naive_estimates(id, &mut reg, 20_000, &SampleConfig::seeded(client))
                    .expect("concurrent query");
            });
        }
    })
    .expect("client scope");
    println!(
        "\n4 concurrent clients served ({} → {} queries recorded, none lost)",
        before,
        query.total_stats().queries
    );

    // The service scoreboard: hits vs misses and per-urn latency.
    for (label, id) in [("social", social_id), ("flat", flat_id)] {
        let qs = query.stats(id);
        println!(
            "{label:>6} {id}: {} queries, {} hits / {} misses, mean latency {:?}",
            qs.queries,
            qs.cache_hits,
            qs.cache_misses,
            qs.mean_latency()
        );
    }
    let cache = store.cache_stats();
    println!(
        "cache: {} resident urns, {:.1} MiB resident, {} evictions",
        cache.resident_urns,
        cache.resident_bytes as f64 / (1 << 20) as f64,
        cache.evictions
    );

    std::fs::remove_dir_all(&dir).ok();
}
