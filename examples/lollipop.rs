//! The Theorem 5 lower-bound instance: the lollipop graph.
//!
//! A clique with a dangling path. The k-path graphlet has polynomially
//! small frequency, and its only spanning tree — the path treelet — is
//! drowned in the urn by the clique's treelets. Any `sample(T)`-based
//! strategy needs Ω(1/p_H) samples to *find* the path... but AGS still
//! wins big versus naive sampling on everything else, and once the heavy
//! classes are covered its treelet switch steers straight at the path.
//!
//! ```sh
//! cargo run --release --example lollipop
//! ```

use motivo::prelude::*;

fn main() {
    let graph = motivo::graph::generators::lollipop(80, 16);
    let k = 5u32;
    println!(
        "lollipop: K{} plus a {}-vertex tail ({} nodes, {} edges)",
        80,
        16,
        graph.num_nodes(),
        graph.num_edges()
    );

    // Ground truth via ESU: how rare is the induced k-path really?
    let exact = motivo::exact::count_exact(&graph, k as u8);
    let path = motivo::graphlet::path(k as u8);
    let p_count = exact.count_of(&path);
    println!(
        "exact: {} induced {k}-paths among {} total {k}-graphlets (frequency {:.2e})",
        p_count,
        exact.total,
        p_count as f64 / exact.total as f64
    );

    let budget = 150_000u64;
    let mut found_naive = 0;
    let mut found_ags = 0;
    let runs = 5;
    for seed in 0..runs {
        let urn = match build_urn(&graph, &BuildConfig::new(k).seed(seed)) {
            Ok(u) => u,
            Err(e) => {
                println!("seed {seed}: {e}");
                continue;
            }
        };
        let mut reg = GraphletRegistry::new(k as u8);
        let naive = naive_estimates(&urn, &mut reg, budget, &SampleConfig::seeded(seed));
        let idx = reg.classify(&path);
        if naive.get(idx).map(|e| e.occurrences).unwrap_or(0) > 0 {
            found_naive += 1;
        }
        let mut reg2 = GraphletRegistry::new(k as u8);
        let res = ags(
            &urn,
            &mut reg2,
            &AgsConfig {
                c_bar: 500,
                max_samples: budget,
                ..AgsConfig::default()
            },
        );
        let idx2 = reg2.classify(&path);
        let hits = res.estimates.get(idx2).map(|e| e.occurrences).unwrap_or(0);
        if hits > 0 {
            found_ags += 1;
        }
        println!(
            "seed {seed}: naive classes {:>3}, AGS classes {:>3} ({} switches), AGS path hits {}",
            naive.per_graphlet.len(),
            res.estimates.per_graphlet.len(),
            res.switches,
            hits
        );
    }
    println!(
        "\npath graphlet witnessed: naive {found_naive}/{runs} colorings, AGS {found_ags}/{runs}"
    );
    println!(
        "(Theorem 5: no sample(T)-based strategy can beat Ω(1/p) here — \
         but AGS reaches that bound instead of naive's additive barrier.)"
    );
}
