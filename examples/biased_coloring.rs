//! Biased coloring (§3.4): trade urn accuracy for build time and table
//! size, quantified by the Theorem 3 bound.
//!
//! ```sh
//! cargo run --release --example biased_coloring
//! ```

use motivo::core::bounds;
use motivo::prelude::*;

fn main() {
    let graph = motivo::graph::generators::barabasi_albert(30_000, 4, 9);
    let k = 5u32;
    println!(
        "graph: {} nodes, {} edges, Δ = {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    // The paper's recipe: grow λ until a small but non-negligible fraction
    // of counts are positive; Theorem 3 then quantifies the accuracy cost.
    // The last column inverts the bound: the smallest per-class count g_i
    // for which Pr[error > 50%] ≤ 10% — it grows as p_k shrinks.
    println!("\n  λ        build      table    records   p_k        g_i for 10% Thm3 bound");
    for lambda in [0.2, 0.1, 0.05, 0.025] {
        let cfg = if (lambda - 1.0 / k as f64).abs() < 1e-9 {
            BuildConfig::new(k).seed(4) // uniform = λ of 1/k
        } else {
            BuildConfig::new(k).seed(4).biased(lambda)
        };
        match build_urn(&graph, &cfg) {
            Ok(urn) => {
                let st = urn.build_stats();
                let p_k = urn.p_colorful();
                // 2·exp(−2ε²/(k−1)!·p_k·g/Δ^{k−2}) ≤ 0.1  ⇔
                // g ≥ ln(20)·(k−1)!·Δ^{k−2}/(2ε²·p_k).
                let eps = 0.5f64;
                let g_needed = (20f64).ln()
                    * bounds::factorial(k - 1)
                    * (graph.max_degree() as f64).powi(k as i32 - 2)
                    / (2.0 * eps * eps * p_k);
                println!(
                    "  {:<7}  {:>7.3}s  {:>6.1} MiB  {:>8}  {:.2e}  {:.2e}",
                    lambda,
                    st.total.as_secs_f64(),
                    st.table_bytes as f64 / (1 << 20) as f64,
                    st.records,
                    p_k,
                    g_needed
                );
            }
            Err(e) => println!("  {lambda:<7}  {e}"),
        }
    }

    // Accuracy cost: estimate the total 4-graphlet count under uniform and
    // biased colorings and compare with exact ground truth.
    let small = motivo::graph::generators::barabasi_albert(800, 3, 2);
    let exact = motivo::exact::count_exact(&small, 4);
    println!(
        "\naccuracy on a small graph (exact total = {}):",
        exact.total
    );
    for (label, lambda) in [("uniform", 0.25f64), ("biased", 0.08)] {
        let mut registry = GraphletRegistry::new(4);
        let mut cfg = EnsembleConfig {
            runs: 10,
            ..EnsembleConfig::naive(4, 60_000)
        };
        if label == "biased" {
            cfg.build = BuildConfig::new(4).biased(lambda);
        }
        let res = motivo::core::ensemble(&small, &mut registry, &cfg).unwrap();
        let total = res.total_count();
        let err = (total - exact.total as f64) / exact.total as f64;
        println!(
            "  {label:<8} λ={lambda:<5} total ≈ {total:>12.0}  (error {:+.2}%, {} empty urns)",
            100.0 * err,
            res.empty_urns
        );
    }
}
