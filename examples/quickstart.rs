//! Quickstart: count all 5-node graphlets of a social-like graph and check
//! a few of them against exact ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use motivo::prelude::*;

fn main() {
    // A 20k-edge preferential-attachment graph — the degree-skewed regime
    // the paper's social datasets live in.
    let graph = motivo::graph::generators::barabasi_albert(5_000, 4, 42);
    println!(
        "host graph: {} nodes, {} edges, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    let k = 5;
    // Build-up phase: color, run the treelet DP in parallel, assemble the urn.
    let urn = build_urn(&graph, &BuildConfig::new(k).seed(7)).expect("build");
    let stats = urn.build_stats();
    println!(
        "build-up: {:?} ({} records, {:.1} MiB, {} check-and-merge ops)",
        stats.total,
        stats.records,
        stats.table_bytes as f64 / (1 << 20) as f64,
        stats.merge_ops
    );
    println!("urn holds {} colorful {k}-treelets", urn.total_treelets());

    // Sampling phase: naive uniform sampling, all cores.
    let samples = 200_000;
    let mut registry = GraphletRegistry::new(k as u8);
    let est = naive_estimates(&urn, &mut registry, samples, &SampleConfig::seeded(1));
    println!(
        "sampling: {} samples in {:?} ({:.0}/s), {} distinct graphlet classes",
        est.samples,
        est.elapsed,
        est.sampling_rate(),
        est.per_graphlet.len()
    );

    // Show the five most frequent classes.
    let mut rows = est.per_graphlet.clone();
    rows.sort_by(|a, b| b.frequency.partial_cmp(&a.frequency).unwrap());
    println!("\n top graphlets (degree sequence → estimated count, frequency):");
    for e in rows.iter().take(5) {
        let info = registry.info(e.index);
        println!(
            "  {:?} → {:>12.0}  ({:.3}%)",
            info.graphlet.degree_sequence(),
            e.count,
            100.0 * e.frequency
        );
    }

    // Sanity: compare the star and clique counts against exact ESU counts.
    let exact = motivo::exact::count_exact(&graph, k as u8);
    for shape in [
        motivo::graphlet::star(k as u8),
        motivo::graphlet::clique(k as u8),
    ] {
        let truth = exact.count_of(&shape) as f64;
        let idx = registry.classify(&shape);
        let got = est.get(idx).map(|e| e.count).unwrap_or(0.0);
        let err = if truth > 0.0 {
            (got - truth) / truth
        } else {
            0.0
        };
        println!(
            "\n  {:?}: estimate {:.0} vs exact {:.0} (error {:+.1}%)",
            shape.degree_sequence(),
            got,
            truth,
            100.0 * err
        );
    }
}
