//! The Yelp scenario of §5.3, distilled: a graph where all but one graphlet
//! class sit many orders of magnitude below the sampling budget's reach.
//! Naive sampling sees only the star; AGS "deletes" it from the urn by
//! switching treelet shapes and keeps producing rare classes.
//!
//! The instance: one star with 30 000 leaves (≈3·10¹⁶ induced 5-stars),
//! ten 4-vertex tails (≈10⁻¹⁰-frequency induced 5-paths), and eighty
//! 5-clique gadgets among leaves (≈10⁻¹⁴-frequency 5-cliques and friends).
//!
//! ```sh
//! cargo run --release --example rare_motifs
//! ```

use motivo::graph::Graph;
use motivo::graphlet::name;
use motivo::prelude::*;

fn build_instance() -> Graph {
    let leaves = 30_000u32;
    let mut edges: Vec<(u32, u32)> = (1..=leaves).map(|l| (0, l)).collect();
    let mut next = leaves + 1;
    // Ten dangling tails of four vertices each.
    for _ in 0..10 {
        let mut prev = 0u32;
        for _ in 0..4 {
            edges.push((prev, next));
            prev = next;
            next += 1;
        }
    }
    // Eighty 5-clique gadgets: five fresh center-leaves, pairwise adjacent.
    for _ in 0..80 {
        let g: Vec<u32> = (0..5).map(|i| next + i).collect();
        next += 5;
        for &v in &g {
            edges.push((0, v));
        }
        for i in 0..5 {
            for j in i + 1..5 {
                edges.push((g[i], g[j]));
            }
        }
    }
    Graph::from_edges(next, &edges)
}

fn main() {
    let graph = build_instance();
    println!(
        "host graph: {} nodes, {} edges, hub degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.degree(0)
    );

    let k = 5u32;
    let budget = 300_000u64;
    let urn = build_urn(&graph, &BuildConfig::new(k).seed(3)).expect("build");
    println!(
        "build: {:?}, urn holds {:.3e} colorful {k}-treelets",
        urn.build_stats().total,
        urn.total_treelets() as f64
    );

    // Naive sampling with the full budget.
    let mut reg_naive = GraphletRegistry::new(k as u8);
    let naive = naive_estimates(&urn, &mut reg_naive, budget, &SampleConfig::seeded(5));

    // AGS with the same budget.
    let mut reg_ags = GraphletRegistry::new(k as u8);
    let cfg = AgsConfig {
        c_bar: 1000,
        max_samples: budget,
        ..AgsConfig::default()
    };
    let result = ags(&urn, &mut reg_ags, &cfg);

    let solid = |est: &Estimates| {
        est.per_graphlet
            .iter()
            .filter(|e| e.occurrences >= 10)
            .count()
    };
    let rarest = |est: &Estimates| {
        est.per_graphlet
            .iter()
            .filter(|e| e.occurrences >= 10)
            .map(|e| e.frequency)
            .fold(f64::INFINITY, f64::min)
    };
    println!("\n                      naive        AGS");
    println!(
        "samples          {:>10} {:>10}",
        naive.samples, result.estimates.samples
    );
    println!(
        "classes seen     {:>10} {:>10}",
        naive.per_graphlet.len(),
        result.estimates.per_graphlet.len()
    );
    println!(
        "classes ≥10 hits {:>10} {:>10}",
        solid(&naive),
        solid(&result.estimates)
    );
    println!("treelet switches {:>10} {:>10}", "-", result.switches);
    println!(
        "rarest freq seen {:>10.1e} {:>10.1e}",
        rarest(&naive),
        rarest(&result.estimates)
    );

    println!("\nAGS class inventory (≥10 hits):");
    let mut rows = result.estimates.per_graphlet.clone();
    rows.sort_by(|a, b| a.frequency.total_cmp(&b.frequency));
    for e in rows.iter().filter(|e| e.occurrences >= 10) {
        println!(
            "  {:>16}  count ≈ {:>10.3e}  freq {:>8.1e}  ({} hits)",
            name(&reg_ags.info(e.index).graphlet),
            e.count,
            e.frequency,
            e.occurrences
        );
    }
    let worst = rarest(&result.estimates);
    if worst.is_finite() && worst > 0.0 {
        println!(
            "\nnaive sampling would need ≈{:.1e} samples to see the rarest of those ten times\n\
             (at 10⁶ samples/s that is ≈{:.0e} seconds — the paper's \"3·10³ years\" effect)",
            10.0 / worst,
            10.0 / worst / 1e6
        );
    }
}
