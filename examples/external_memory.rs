//! Greedy flushing + urn persistence: build a count table that never fully
//! resides in RAM, persist it, and reopen it in (simulated) another
//! process — the §3.1/§3.3 external-memory workflow.
//!
//! ```sh
//! cargo run --release --example external_memory
//! ```

use motivo::prelude::*;

fn main() {
    let graph = motivo::graph::generators::barabasi_albert(20_000, 4, 3);
    let k = 5;
    let dir = std::env::temp_dir().join("motivo-example-external");
    std::fs::remove_dir_all(&dir).ok();

    // Build with greedy flushing: each completed record goes straight to
    // disk; only one vertex's hash accumulator lives in RAM per worker.
    let cfg = BuildConfig::new(k)
        .seed(5)
        .storage(StorageKind::Disk { dir: dir.clone() });
    let urn = build_urn(&graph, &cfg).expect("build");
    let st = urn.build_stats();
    println!(
        "disk build: {:?}, {} records, {:.1} MiB on disk across {} levels",
        st.total,
        st.records,
        st.table_bytes as f64 / (1 << 20) as f64,
        k
    );
    for entry in std::fs::read_dir(&dir).unwrap() {
        let e = entry.unwrap();
        println!(
            "  {:>12} B  {}",
            e.metadata().unwrap().len(),
            e.file_name().to_string_lossy()
        );
    }

    // Persist the full urn (adds the coloring + metadata + level indexes).
    motivo::core::save_urn(&urn, &dir).expect("persist");
    drop(urn);

    // "Another process": reopen and sample. `load_urn` preloads into RAM;
    // `load_urn_external` would keep serving records from the files.
    let urn = motivo::core::load_urn(&graph, &dir).expect("reload");
    let mut registry = GraphletRegistry::new(k as u8);
    let est = naive_estimates(&urn, &mut registry, 100_000, &SampleConfig::seeded(2));
    println!(
        "\nreloaded urn: {} colorful treelets; sampled {} copies at {:.0}/s",
        urn.total_treelets(),
        est.samples,
        est.sampling_rate()
    );
    let mut rows = est.per_graphlet.clone();
    rows.sort_by(|a, b| b.frequency.partial_cmp(&a.frequency).unwrap());
    for e in rows.iter().take(5) {
        println!(
            "  {:>12}  ~{:.3e} copies  ({:.3}%)",
            motivo::graphlet::name(&registry.info(e.index).graphlet),
            e.count,
            100.0 * e.frequency
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
