//! Serving motif counts over TCP: build a store, start the daemon on an
//! ephemeral port, drive it with the wire client, and shut it down
//! gracefully — all in one process.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use motivo::prelude::*;
use motivo::server::proto;
use serde_json::json;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("motivo-serve-example-{}", std::process::id()));

    // A store with one built urn (k = 4 over a small scale-free graph).
    let graph = motivo::graph::generators::barabasi_albert(2_000, 3, 7);
    let store = Arc::new(UrnStore::open(&dir)?);
    let handle = store.build_or_get(&graph, &BuildConfig::new(4).seed(1))?;
    handle.wait()?;
    println!("built {} into {}", handle.id(), dir.display());

    // The daemon: worker pool + bounded queue over that store.
    let server = Server::bind(store, "127.0.0.1:0", ServeOptions::default())?;
    println!("serving on {}", server.addr());

    // A client drives it over real TCP.
    let mut client = Client::connect(server.addr())?;
    let urns = client.request(&json!({"type": "ListUrns"}))?;
    println!("urns: {}", serde_json::to_string(&urns)?);

    let est = client.request(&json!({
        "type": "NaiveEstimates", "urn": 0, "samples": 20_000, "seed": 3,
    }))?;
    println!(
        "estimated ~{:.3e} induced 4-graphlet copies across {} classes",
        est.get("total_count")
            .and_then(|t| t.as_f64())
            .unwrap_or(0.0),
        est.get("classes")
            .and_then(|c| c.as_array())
            .map(|c| c.len())
            .unwrap_or(0),
    );

    // The determinism guarantee across the wire: same seed, same bytes.
    let again = client.request(&json!({
        "type": "NaiveEstimates", "urn": 0, "samples": 20_000, "seed": 3, "threads": 2,
    }))?;
    assert_eq!(
        serde_json::to_string(&est)?,
        serde_json::to_string(&again)?,
        "a seeded request is byte-identical at any thread count"
    );
    println!("re-request with the same seed: byte-identical ✓");

    // Raw frames work too — this is all `motivo client` does.
    let mut raw = std::net::TcpStream::connect(server.addr())?;
    proto::write_frame(&mut raw, br#"{"id":"raw","type":"Stats"}"#)?;
    let frame = proto::read_frame(&mut raw)?.expect("response");
    println!("raw stats envelope: {}", String::from_utf8_lossy(&frame));

    // Graceful shutdown over the wire; stats land in the store directory.
    client.request(&json!({"type": "Shutdown"}))?;
    let report = server.join();
    println!(
        "report: {} requests, {} connections, stats at {:?}",
        report.requests, report.connections, report.stats_path
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
