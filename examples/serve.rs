//! Serving motif counts over TCP: build a store, start the daemon on an
//! ephemeral port, drive it with the typed wire client, and shut it down
//! gracefully — all in one process.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use motivo::prelude::*;
use motivo::server::proto;
use serde_json::json;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("motivo-serve-example-{}", std::process::id()));

    // A store with one built urn (k = 4 over a small scale-free graph).
    let graph = motivo::graph::generators::barabasi_albert(2_000, 3, 7);
    let store = Arc::new(UrnStore::open(&dir)?);
    let handle = store.build_or_get(&graph, &BuildConfig::new(4).seed(1))?;
    handle.wait()?;
    println!("built {} into {}", handle.id(), dir.display());

    // The daemon: one reactor thread multiplexing every connection, plus
    // a worker pool behind a bounded queue, configured via the builder.
    let opts = ServeOptions::builder().workers(2).build()?;
    let server = Server::bind(store, "127.0.0.1:0", opts)?;
    println!("serving on {}", server.addr());

    // A client drives it over real TCP, starting with the version
    // handshake (answered inline, so it works even under full load).
    let mut client = Client::connect(server.addr())?;
    let hello = client.hello()?;
    println!(
        "connected to {} (proto v{}, {} request kinds, pipeline cap {})",
        hello.server,
        hello.proto_version,
        hello.kinds.len(),
        hello.max_pipeline
    );

    let urns = client.list_urns()?;
    println!("urns: {:?}", urns.urns.iter().map(|u| &u.id).collect::<Vec<_>>());

    let est = client.naive_estimates(UrnId(0), 20_000, 3)?;
    println!(
        "estimated ~{:.3e} induced 4-graphlet copies across {} classes",
        est.total_count,
        est.classes.len()
    );

    // The determinism guarantee across the wire: same seed, same bytes —
    // and because the server knows that, the repeat is a cache replay of
    // the exact payload, not a second estimator run. The raw `request`
    // escape hatch exposes the payload bytes the guarantee is stated over.
    let raw_est = client.request(&json!({
        "type": "NaiveEstimates", "urn": 0, "samples": 20_000, "seed": 3,
    }))?;
    let again = client.request(&json!({
        "type": "NaiveEstimates", "urn": 0, "samples": 20_000, "seed": 3, "threads": 2,
    }))?;
    assert_eq!(
        serde_json::to_string(&raw_est)?,
        serde_json::to_string(&again)?,
        "a seeded request is byte-identical at any thread count"
    );
    let stats = client.stats(None)?;
    let qc = stats.get("query_cache").expect("cache counters");
    println!(
        "re-request with the same seed: byte-identical ✓ (cache: {} miss, {} hit)",
        qc.get("misses").and_then(|v| v.as_u64()).unwrap_or(0),
        qc.get("hits").and_then(|v| v.as_u64()).unwrap_or(0),
    );

    // Batching: several sub-requests through one frame and one worker
    // slot, answered in order with per-sub-request envelopes.
    let subs = vec![
        json!({"id": "est", "type": "NaiveEstimates", "urn": 0, "samples": 20_000, "seed": 3}),
        json!({"id": "tally", "type": "Sample", "urn": 0, "samples": 5_000, "seed": 1}),
        json!({"id": "oops", "type": "NaiveEstimates", "urn": 99}),
    ];
    let batch = client.request(&json!({"type": "Batch", "requests": subs}))?;
    let responses = batch
        .get("responses")
        .expect("responses")
        .as_array()
        .unwrap();
    assert_eq!(responses.len(), 3, "in request order");
    assert_eq!(
        serde_json::to_string(&responses[0].get("ok").expect("cached estimate"))?,
        serde_json::to_string(&raw_est)?,
        "the batched estimate replays the cached bytes"
    );
    println!(
        "batch of 3: ok, ok, {} ✓",
        responses[2]
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str().map(str::to_string))
            .unwrap_or_default()
    );

    // Raw frames work too — this is all `motivo client` does.
    let mut raw = std::net::TcpStream::connect(server.addr())?;
    proto::write_frame(&mut raw, br#"{"id":"raw","type":"Stats"}"#)?;
    let frame = proto::read_frame(&mut raw)?.expect("response");
    println!("raw stats envelope: {}", String::from_utf8_lossy(&frame));

    // Graceful shutdown over the wire; stats land in the store directory.
    client.shutdown()?;
    let report = server.join();
    println!(
        "report: {} requests, {} connections, stats at {:?}",
        report.requests, report.connections, report.stats_path
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
